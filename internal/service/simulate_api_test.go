package service_test

// End-to-end tests of the what-if simulation API: the Symantec-style
// distrust-after scenario against the synthetic ecosystem, sweep caching
// and conditional GETs, generation pinning under hot swaps, and the
// body-cap parity POST /v1/simulate must keep with POST /v1/verify.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	trustroots "repro"
	"repro/internal/certutil"
	"repro/internal/service"
	"repro/internal/simulate"
	"repro/internal/store"
	"repro/internal/testcerts"
)

// postSimulate posts a simulate request and decodes the response.
func postSimulate(t testing.TB, srv *service.Server, body map[string]any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	var out map[string]any
	data, _ := io.ReadAll(res.Body)
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("POST /v1/simulate: decode %q: %v", data, err)
		}
	}
	return res, out
}

// symantecFingerprint finds an NSS root carrying a server-auth
// distrust-after annotation — the synthetic Symantec cohort.
func symantecFingerprint(t testing.TB) string {
	t.Helper()
	eco, _ := fixture(t)
	snap := eco.DB.History(trustroots.NSS).At(ts(2020, 9, 15))
	for _, e := range snap.Entries() {
		if _, ok := e.DistrustAfterFor(store.ServerAuth); ok {
			return e.Fingerprint.String()
		}
	}
	t.Fatal("no partially distrusted root in NSS snapshot")
	return ""
}

func TestSimulateSymantecScenario(t *testing.T) {
	eco, srv := fixture(t)
	fp := symantecFingerprint(t)

	res, out := postSimulate(t, srv, map[string]any{
		"kind":         "distrust-after",
		"fingerprints": []string{fp},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", res.StatusCode, out)
	}
	if res.Header.Get("X-Rootpack-Hash") == "" {
		t.Error("response not stamped with generation hash")
	}
	if out["kind"] != "distrust-after" || out["provider"] != trustroots.NSS {
		t.Errorf("kind/provider = %v/%v", out["kind"], out["provider"])
	}

	// The API answer must agree with an engine run over the same database
	// — the service adds transport, not arithmetic.
	parsed, err := certutil.ParseFingerprint(fp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := simulate.New(eco.DB, simulate.Options{}).Simulate(simulate.Event{
		Kind:         simulate.KindDistrustAfter,
		Fingerprints: []certutil.Fingerprint{parsed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out["impact_fraction"].(float64); got != want.ImpactFraction {
		t.Errorf("impact = %v, engine says %v", got, want.ImpactFraction)
	}
	if got := out["trusted_fraction"].(float64); got != want.TrustedFraction {
		t.Errorf("trusted = %v, engine says %v", got, want.TrustedFraction)
	}
	if want.ImpactFraction <= 0 {
		t.Error("Symantec scenario should impact the NSS family share")
	}

	// §6.2's finding, live: every synthetic derivative ships a flattened
	// format, so none can honor the cutoff — each one either ignores it
	// (full trust), overblocks (dropped the root) or never carried it.
	risks, _ := out["mismatch_risks"].([]any)
	if len(risks) == 0 {
		t.Fatal("distrust-after event produced no mismatch risks")
	}
	for _, raw := range risks {
		row := raw.(map[string]any)
		if row["supports_distrust_after"] == true {
			t.Errorf("derivative %v claims distrust-after support; synth derivatives are flattened", row["derivative"])
		}
		switch row["risk"] {
		case simulate.MismatchIgnored, simulate.MismatchRemoved, simulate.MismatchNotTrusted:
		default:
			t.Errorf("derivative %v has unexpected risk %v", row["derivative"], row["risk"])
		}
	}
}

func TestSimulateErrorsOverHTTP(t *testing.T) {
	_, srv := fixture(t)
	fp := symantecFingerprint(t)
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"unknown provider", map[string]any{"kind": "removal", "store": "Netscape", "fingerprints": []string{fp}}, http.StatusNotFound},
		{"owner matches nothing", map[string]any{"kind": "ca-removal", "owner": "Honest Achmed"}, http.StatusNotFound},
		{"unknown kind", map[string]any{"kind": "merger"}, http.StatusBadRequest},
		{"malformed fingerprint", map[string]any{"kind": "removal", "fingerprints": []string{"zz"}}, http.StatusBadRequest},
		{"missing fingerprints", map[string]any{"kind": "removal"}, http.StatusBadRequest},
		{"bad date", map[string]any{"kind": "removal", "fingerprints": []string{fp}, "date": "soon"}, http.StatusBadRequest},
		{"bad purpose", map[string]any{"kind": "removal", "fingerprints": []string{fp}, "purpose": "tea-making"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if res, out := postSimulate(t, srv, tc.body); res.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%v)", tc.name, res.StatusCode, tc.want, out)
		}
	}
}

func TestSimulateSweepCachingAndETag(t *testing.T) {
	// Private server: the fixture's sweep counters are shared with other
	// tests, and this test asserts exact build counts.
	eco, _ := fixture(t)
	srv := service.New(eco.DB, service.Config{})

	var resp struct {
		Pairs   int `json:"pairs"`
		Roots   int `json:"roots"`
		Top     []struct {
			Fingerprint string  `json:"fingerprint"`
			Store       string  `json:"store"`
			Impact      float64 `json:"impact"`
		} `json:"top"`
	}
	res := get(t, srv, "/v1/simulate/sweep", &resp)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	etag := res.Header.Get("ETag")
	if etag == "" {
		t.Fatal("sweep response has no ETag")
	}
	if resp.Pairs == 0 || len(resp.Top) == 0 || len(resp.Top) > 20 {
		t.Fatalf("pairs=%d top=%d, want non-empty top capped at 20", resp.Pairs, len(resp.Top))
	}
	for i := 1; i < len(resp.Top); i++ {
		if resp.Top[i].Impact > resp.Top[i-1].Impact {
			t.Fatal("top entries not ranked by impact")
		}
	}

	var small struct {
		Top []json.RawMessage `json:"top"`
	}
	if res := get(t, srv, "/v1/simulate/sweep?n=3", &small); res.StatusCode != http.StatusOK || len(small.Top) != 3 {
		t.Fatalf("?n=3: status %d, top %d", res.StatusCode, len(small.Top))
	}
	if res := get(t, srv, "/v1/simulate/sweep?n=bogus", nil); res.StatusCode != http.StatusBadRequest {
		t.Errorf("?n=bogus: status %d, want 400", res.StatusCode)
	}

	// The ranking is computed once per generation however many times it
	// is served.
	if builds := srv.Metrics().SimulateSweepBuilds(); builds != 1 {
		t.Errorf("sweep builds = %d after 2 full responses, want 1", builds)
	}

	// A conditional request against the same generation costs a 304.
	req := httptest.NewRequest(http.MethodGet, "/v1/simulate/sweep", nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("conditional status = %d, want 304", rec.Code)
	}

	// Swapping in a different database invalidates the tag and triggers
	// exactly one rebuild. (Re-installing the same content keeps the same
	// hash — a conditional GET would still 304, correctly.)
	other := store.NewDatabase()
	snap := store.NewSnapshot(trustroots.NSS, "tiny", time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	e, err := store.NewTrustedEntry(testcerts.Roots(1)[0].DER, store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	snap.Add(e)
	if err := other.AddSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv.Swap(other)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req) // same If-None-Match, new generation
	if rec.Code != http.StatusOK {
		t.Fatalf("post-swap conditional status = %d, want 200", rec.Code)
	}
	if builds := srv.Metrics().SimulateSweepBuilds(); builds != 2 {
		t.Errorf("sweep builds = %d after swap, want 2", builds)
	}
}

// TestSimulateHotSwapPinning proves no generation mixing: under a swap
// storm between a database that carries a root and one that never saw it,
// every response's generation header must agree with its outcome —
// impact for the generation that has the root, 404 for the one that
// does not.
func TestSimulateHotSwapPinning(t *testing.T) {
	roots := testcerts.Roots(2)
	day := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	mkdb := func(idx ...int) *store.Database {
		db := store.NewDatabase()
		snap := store.NewSnapshot(trustroots.NSS, "1", day)
		for _, i := range idx {
			e, err := store.NewTrustedEntry(roots[i].DER, store.ServerAuth)
			if err != nil {
				t.Fatal(err)
			}
			snap.Add(e)
		}
		if err := db.AddSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		return db
	}
	withRoot, withoutRoot := mkdb(0, 1), mkdb(1)
	target := certutil.SHA256Fingerprint(roots[0].DER).String()

	srv := service.New(withRoot, service.Config{})
	var hashWith, hashWithout string
	{
		res, _ := postSimulate(t, srv, map[string]any{"kind": "removal", "fingerprints": []string{target}})
		hashWith = res.Header.Get("X-Rootpack-Hash")
	}
	srv.Swap(withoutRoot)
	{
		res, _ := postSimulate(t, srv, map[string]any{"kind": "removal", "fingerprints": []string{target}})
		hashWithout = res.Header.Get("X-Rootpack-Hash")
	}
	if hashWith == "" || hashWithout == "" || hashWith == hashWithout {
		t.Fatalf("generations not distinguishable: %q vs %q", hashWith, hashWithout)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				srv.Swap(withRoot)
			} else {
				srv.Swap(withoutRoot)
			}
		}
	}()

	body, _ := json.Marshal(map[string]any{"kind": "removal", "fingerprints": []string{target}})
	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 50; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, req)
				hash := rec.Header().Get("X-Rootpack-Hash")
				switch hash {
				case hashWith:
					if rec.Code != http.StatusOK {
						t.Errorf("generation %s answered %d, want 200", hash[:8], rec.Code)
						return
					}
				case hashWithout:
					if rec.Code != http.StatusNotFound {
						t.Errorf("generation %s answered %d, want 404", hash[:8], rec.Code)
						return
					}
				default:
					t.Errorf("response stamped with unknown generation %q", hash)
					return
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	swapper.Wait()
}

// TestSimulateBodyCapParity pins the satellite requirement: POST
// /v1/simulate refuses oversized bodies with the same 413 and the same
// configured cap as POST /v1/verify.
func TestSimulateBodyCapParity(t *testing.T) {
	roots := testcerts.Roots(1)
	db := store.NewDatabase()
	snap := store.NewSnapshot(trustroots.NSS, "1", time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	e, err := store.NewTrustedEntry(roots[0].DER, store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	snap.Add(e)
	if err := db.AddSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv := service.New(db, service.Config{MaxBodyBytes: 256})

	oversized := `{"pad":"` + strings.Repeat("x", 512) + `"}`
	for _, path := range []string{"/v1/verify", "/v1/simulate"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(oversized))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: status = %d, want 413", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "256 bytes") {
			t.Errorf("POST %s 413 body does not name the shared cap: %s", path, rec.Body.String())
		}
	}
}

func TestSimulateMetricsExposition(t *testing.T) {
	_, srv := fixture(t)
	fp := symantecFingerprint(t)
	if res, out := postSimulate(t, srv, map[string]any{"kind": "removal", "fingerprints": []string{fp}}); res.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %v", res.StatusCode, out)
	}
	if get(t, srv, "/v1/simulate/sweep", nil).StatusCode != http.StatusOK {
		t.Fatal("sweep failed")
	}
	if n := srv.Metrics().SimulateEvents("removal"); n < 1 {
		t.Errorf("simulate_events[removal] = %d, want >= 1", n)
	}
	if n := srv.Metrics().SimulateSweeps(); n < 1 {
		t.Errorf("simulate_sweeps_total = %d, want >= 1", n)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics/prometheus", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	text := rec.Body.String()
	for _, family := range []string{
		"trustd_simulate_events_total",
		"trustd_simulate_sweeps_total",
		"trustd_simulate_sweep_builds_total",
		"trustd_simulate_sweep_pairs",
		"trustd_simulate_sweep_build_seconds",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %s", family)
		}
	}
}
