package service_test

// Concurrent-load regression: 32 goroutines hammer POST /v1/verify through
// a real HTTP listener. Run under -race (CI does) this exercises the
// sharded verifier cache, the LRU, the worker semaphore and the lazily
// built verify pools all stampeding at once.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/service"
)

func TestVerifyConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	eco, _ := fixture(t)
	// A private server so cache metrics start from zero.
	inner := service.New(eco.DB, service.Config{})
	srv := httptest.NewServer(inner.Handler())
	defer srv.Close()

	chain, _ := symantecChain(t, eco)
	providers := eco.DB.Providers()

	const goroutines = 32
	const perGoroutine = 12
	var failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := srv.Client()
			for i := 0; i < perGoroutine; i++ {
				// Rotate across single-store, two-store and all-store
				// requests so both caches see mixed keys.
				body := map[string]any{"chain_pem": chain, "at": "2020-11-15"}
				switch (g + i) % 3 {
				case 0:
					body["stores"] = []string{providers[(g+i)%len(providers)]}
				case 1:
					body["stores"] = []string{"NSS", "Debian"}
				case 2:
					// Distinct verdict key (dns_name) over the same
					// snapshots: exercises the verifier cache's hit path,
					// not just the LRU's.
					body["dns_name"] = "shop.example.test"
				}
				raw, _ := json.Marshal(body)
				resp, err := client.Post(srv.URL+"/v1/verify", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					failures.Add(1)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d: %s", g, resp.StatusCode, data)
					failures.Add(1)
					return
				}
				var out struct {
					Verdicts []struct {
						Outcome string `json:"outcome"`
					} `json:"verdicts"`
				}
				if err := json.Unmarshal(data, &out); err != nil || len(out.Verdicts) == 0 {
					t.Errorf("goroutine %d: bad body %s", g, data)
					failures.Add(1)
					return
				}
				for _, v := range out.Verdicts {
					if v.Outcome == "" {
						t.Errorf("goroutine %d: empty outcome", g)
						failures.Add(1)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d goroutines failed", n)
	}
	// The stampede must have shared work: with 384 requests over ≤ 12
	// distinct (chain, store, purpose, time) keys, nearly everything after
	// the first round is a verdict-cache hit.
	if inner.Metrics().CacheHits("verdict") == 0 {
		t.Error("no verdict cache hits under concurrent load")
	}
	if inner.Metrics().CacheHits("verifier") == 0 {
		t.Error("no verifier cache hits under concurrent load")
	}
}
