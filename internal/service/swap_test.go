package service_test

// Hot-swap regression: 32 goroutines hammer the read and verify endpoints
// through a real HTTP listener while the main goroutine swaps the serving
// database back and forth. Run under -race (CI does) this is the proof
// behind the tracker's reload path: no request may ever observe a torn
// generation, error with a 5xx, or flip a verdict for a root trusted in
// both databases.

import (
	"bytes"
	"encoding/json"
	"encoding/pem"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/certgen"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/testcerts"
)

// swapDB builds a two-provider database over the shared test roots at the
// given indices, with fresh snapshots (snapshots bind to one database's
// interner and must not be shared across generations).
func swapDB(t *testing.T, version string, idx ...int) *store.Database {
	t.Helper()
	db := store.NewDatabase()
	for _, provider := range []string{"NSS", "Debian"} {
		snap := store.NewSnapshot(provider, version, ts(2020, 1, 1))
		for _, i := range idx {
			e, err := store.NewTrustedEntry(testcerts.Roots(i + 1)[i].DER, store.ServerAuth)
			if err != nil {
				t.Fatal(err)
			}
			snap.Add(e)
		}
		if err := db.AddSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestHotSwapUnderQueryStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("swap storm skipped in -short mode")
	}
	// Generation A trusts roots 0..2; generation B drops root 0 and adds
	// root 3. Root 1 is trusted in both, so a chain under it must verify
	// "ok" no matter which generation answers.
	dbA := swapDB(t, "2020-01-01", 0, 1, 2)
	dbB := swapDB(t, "2020-01-01", 1, 2, 3)

	anchor := testcerts.Roots(2)[1]
	leafDER, _, err := anchor.IssueLeaf(testcerts.Pool(), certgen.LeafSpec{
		CommonName: "swap.example.test",
		DNSNames:   []string{"swap.example.test"},
		NotBefore:  ts(2019, 1, 1),
		NotAfter:   ts(2030, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	chain := string(pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: leafDER}))

	stableFP := fingerprintOf(t, dbA, 1)
	removedFP := fingerprintOf(t, dbA, 0)
	addedFP := fingerprintOf(t, dbB, 3)

	inner := service.New(dbA, service.Config{})
	srv := httptest.NewServer(inner.Handler())
	defer srv.Close()

	const goroutines = 32
	const perGoroutine = 40
	var failures atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	swapDone := make(chan struct{})

	// Swapper: flip generations as fast as the storm runs.
	go func() {
		defer close(swapDone)
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			if flip {
				inner.Swap(dbA)
			} else {
				inner.Swap(dbB)
			}
			flip = !flip
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := srv.Client()
			for i := 0; i < perGoroutine; i++ {
				var resp *http.Response
				var err error
				switch (g + i) % 4 {
				case 0:
					resp, err = client.Get(srv.URL + "/v1/roots/" + stableFP)
				case 1:
					resp, err = client.Get(srv.URL + "/v1/diff?a=NSS&b=Debian")
				case 2:
					resp, err = client.Get(srv.URL + "/healthz")
				case 3:
					raw, _ := json.Marshal(map[string]any{
						"chain_pem": chain,
						"at":        "2020-06-01",
						"dns_name":  "swap.example.test",
					})
					resp, err = client.Post(srv.URL+"/v1/verify", "application/json", bytes.NewReader(raw))
				}
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					failures.Add(1)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("goroutine %d: status %d mid-swap: %s", g, resp.StatusCode, data)
					failures.Add(1)
					return
				}
				// The root trusted in both generations must stay found, and
				// its chain must verify ok, whichever database answered.
				if (g+i)%4 == 0 && resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: stable root vanished: %d", g, resp.StatusCode)
					failures.Add(1)
					return
				}
				if (g+i)%4 == 3 {
					var out struct {
						Verdicts []struct {
							Outcome string `json:"outcome"`
						} `json:"verdicts"`
					}
					if err := json.Unmarshal(data, &out); err != nil || len(out.Verdicts) == 0 {
						t.Errorf("goroutine %d: bad verify body %s", g, data)
						failures.Add(1)
						return
					}
					for _, v := range out.Verdicts {
						if v.Outcome != "ok" {
							t.Errorf("goroutine %d: stable chain verdict %q mid-swap", g, v.Outcome)
							failures.Add(1)
							return
						}
					}
				}
			}
		}(g)
	}

	// Wait for the storm to finish, then retire the swapper.
	storm := make(chan struct{})
	go func() { wg.Wait(); close(storm) }()
	select {
	case <-storm:
	case <-time.After(2 * time.Minute):
		t.Fatal("storm deadlocked")
	}
	close(stop)
	<-swapDone

	if failures.Load() > 0 {
		t.Fatalf("%d requests failed during hot swaps", failures.Load())
	}

	// Settle on generation B and check the swap actually took effect.
	inner.Swap(dbB)
	if resp, err := srv.Client().Get(srv.URL + "/v1/roots/" + removedFP); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("removed root still served after swap: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := srv.Client().Get(srv.URL + "/v1/roots/" + addedFP); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("added root not served after swap: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if n := inner.Metrics().ReloadCount(); n < 2 {
		t.Errorf("reloads_total = %d, want the storm's swaps counted", n)
	}
}

// fingerprintOf resolves the shared test root at idx to its hex fingerprint
// via the database's own entries (keeps the test honest about identity).
func fingerprintOf(t *testing.T, db *store.Database, idx int) string {
	t.Helper()
	e, err := store.NewTrustedEntry(testcerts.Roots(idx + 1)[idx].DER, store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range db.AllSnapshots() {
		if got, ok := snap.Lookup(e.Fingerprint); ok {
			return got.Fingerprint.String()
		}
	}
	return e.Fingerprint.String()
}
