package service_test

// The ISSUE's acceptance scenario, end to end: a trustd server stays up and
// answering while internal/tracker ingests a new snapshot directory behind
// it — the hot reload swaps the database mid-storm, /v1/events replays the
// removal with its severity tag, /v1/events/watch streams it live, and the
// index reflects the newly trusted root without a restart.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pemstore"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/testcerts"
	"repro/internal/tracker"
)

// writeSnapshotDir writes a PEM-bundle snapshot under <root>/<provider>/<version>.
func writeSnapshotDir(t *testing.T, root, provider, version string, idx ...int) {
	t.Helper()
	dir := filepath.Join(root, provider, version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var entries []*store.TrustEntry
	for _, i := range idx {
		e, err := store.NewTrustedEntry(testcerts.Roots(i + 1)[i].DER, store.ServerAuth)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pemstore.WriteBundle(f, entries); err != nil {
		t.Fatal(err)
	}
}

func TestWatchEndToEndHotReload(t *testing.T) {
	root := t.TempDir()
	writeSnapshotDir(t, root, "NSS", "2020-01-01", 0, 1, 2)
	writeSnapshotDir(t, root, "Debian", "2020-01-01", 0, 1, 2)

	// The tracker drives reloads; the server is created from the first
	// ingested database, then swapped on every subsequent one.
	var srv atomic.Pointer[service.Server]
	trk, err := tracker.New(tracker.Config{
		Source: tracker.NewDirSource(root, 0),
		OnReload: func(db *store.Database) {
			if s := srv.Load(); s != nil {
				s.Swap(db)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	inner := service.New(trk.Database(), service.Config{})
	inner.AttachEvents(trk)
	srv.Store(inner)

	web := httptest.NewServer(inner.Handler())
	defer web.Close()

	stableFP := fingerprintOf(t, trk.Database(), 1)
	removedFP := fingerprintOf(t, trk.Database(), 0)
	newFP := func() string {
		e, err := store.NewTrustedEntry(testcerts.Roots(4)[3].DER, store.ServerAuth)
		if err != nil {
			t.Fatal(err)
		}
		return e.Fingerprint.String()
	}()

	// The new root is unknown before the reload.
	if resp, err := web.Client().Get(web.URL + "/v1/roots/" + newFP); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("new root before reload: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Open the SSE watch stream before the change happens.
	watchReq, _ := http.NewRequest(http.MethodGet, web.URL+"/v1/events/watch?type=root-removed", nil)
	watchResp, err := web.Client().Do(watchReq)
	if err != nil {
		t.Fatal(err)
	}
	defer watchResp.Body.Close()
	if got := watchResp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("watch content-type = %q", got)
	}
	sse := make(chan string, 16)
	go func() {
		scanner := bufio.NewScanner(watchResp.Body)
		for scanner.Scan() {
			sse <- scanner.Text()
		}
		close(sse)
	}()

	// Query storm that must never observe an error across the reload.
	stop := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := web.Client().Get(web.URL + "/v1/roots/" + stableFP)
				if err != nil {
					failures.Add(1)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					return
				}
			}
		}()
	}

	// The change: NSS's next release drops root 0 and introduces root 3.
	writeSnapshotDir(t, root, "NSS", "2020-03-01", 1, 2, 3)
	n, err := trk.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("rescan ingested %d snapshots, want 1", n)
	}

	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d queries failed across the hot reload", failures.Load())
	}

	// The SSE stream delivers the removal (replayed-or-live, deduped).
	deadline := time.After(5 * time.Second)
	var sawRemoval, sawSeverity bool
	for !(sawRemoval && sawSeverity) {
		select {
		case line, ok := <-sse:
			if !ok {
				t.Fatal("watch stream closed before the removal arrived")
			}
			if strings.HasPrefix(line, "event: root-removed") {
				sawRemoval = true
			}
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, removedFP) {
				if !strings.Contains(line, `"severity"`) {
					t.Fatalf("event without severity tag: %s", line)
				}
				sawSeverity = true
			}
		case <-deadline:
			t.Fatal("timed out waiting for the removal on /v1/events/watch")
		}
	}

	// /v1/events replays the removal with its severity classification.
	var events struct {
		Events []struct {
			Type        string `json:"type"`
			Severity    string `json:"severity"`
			Provider    string `json:"provider"`
			Fingerprint string `json:"fingerprint"`
			Holders     []string
		} `json:"events"`
		Count int `json:"count"`
	}
	resp, err := web.Client().Get(web.URL + "/v1/events?type=root-removed")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if events.Count != 1 {
		t.Fatalf("replayed %d removals, want 1", events.Count)
	}
	rm := events.Events[0]
	if rm.Provider != "NSS" || rm.Fingerprint != removedFP {
		t.Errorf("removal = %+v", rm)
	}
	// Debian still trusts root 0, so the tracker classifies this high.
	if rm.Severity != "high" {
		t.Errorf("removal severity = %q, want high", rm.Severity)
	}

	// Filters reject garbage and pass through real constraints.
	if resp, err := web.Client().Get(web.URL + "/v1/events?min_severity=apocalyptic"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_severity: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// The reload actually changed what the index serves.
	if resp, err := web.Client().Get(web.URL + "/v1/roots/" + newFP); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("new root after reload: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if got := inner.Metrics().ReloadCount(); got != 1 {
		t.Errorf("reloads_total = %d, want 1", got)
	}
	if lag := inner.Metrics().ProviderLagSeconds("NSS"); lag < 0 {
		t.Error("NSS lag gauge missing after reload")
	}
}

// TestEventsWithoutFeed pins the static-deployment behaviour: no tracker,
// no /v1/events.
func TestEventsWithoutFeed(t *testing.T) {
	_, srv := fixture(t)
	res := get(t, srv, "/v1/events", nil)
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("events without feed = %d, want 404", res.StatusCode)
	}
}
