//go:build race

package service_test

// raceEnabled reports whether the race detector is compiled in. Timing
// guards skip under it: instrumentation taxes the paths being compared
// unevenly, so the ratio measures the detector, not the code.
const raceEnabled = true
