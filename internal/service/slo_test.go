package service

import (
	"testing"
	"time"
)

func TestSLORingBurnRates(t *testing.T) {
	r := newSLORing()
	now := time.Unix(1_700_000_000, 0)
	r.nowFunc = func() time.Time { return now }

	// 1000 requests this minute: 2 errors (2× the 0.1% availability
	// budget), 20 slow (2× the 1% latency budget).
	for i := 0; i < 1000; i++ {
		code, d := 200, 10*time.Millisecond
		if i < 2 {
			code = 500
		}
		if i < 20 {
			d = 500 * time.Millisecond
		}
		r.observe(code, d)
	}
	avail, lat, req := r.burnRates(5)
	if req != 1000 {
		t.Fatalf("window requests = %d, want 1000", req)
	}
	if avail < 1.99 || avail > 2.01 {
		t.Errorf("availability burn = %v, want ~2.0", avail)
	}
	if lat < 1.99 || lat > 2.01 {
		t.Errorf("latency burn = %v, want ~2.0", lat)
	}

	// The same traffic seen through the 1h window burns 12× less
	// per-minute pressure but the rate is identical (same request set).
	avail1h, _, req1h := r.burnRates(60)
	if req1h != 1000 || avail1h != avail {
		t.Errorf("1h window = (%v, %d), want same rates over same traffic", avail1h, req1h)
	}

	// Advance past the 5m window: its burn drops to zero, 1h still sees it.
	now = now.Add(10 * time.Minute)
	if _, _, req := r.burnRates(5); req != 0 {
		t.Errorf("5m window after 10m = %d requests, want 0", req)
	}
	if _, _, req := r.burnRates(60); req != 1000 {
		t.Errorf("1h window after 10m = %d requests, want 1000", req)
	}

	// A slot is recycled when its minute comes around again.
	now = now.Add(time.Duration(sloRingMinutes) * time.Minute)
	r.observe(200, time.Millisecond)
	if _, _, req := r.burnRates(60); req != 1 {
		t.Errorf("after ring wrap = %d requests, want 1", req)
	}
}

func TestSLORingEmptyWindow(t *testing.T) {
	r := newSLORing()
	if a, l, req := r.burnRates(5); a != 0 || l != 0 || req != 0 {
		t.Fatalf("empty ring burn = (%v, %v, %d)", a, l, req)
	}
}
