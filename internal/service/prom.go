package service

import (
	"expvar"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// promNamespace prefixes every family the server exports, so a Prometheus
// scraping several services can tell trustd's request counters apart.
const promNamespace = "trustd_"

// The event feed (tracker) may also implement StatsSource — reload
// durations, event counts. The server only type-asserts; it never
// requires the capability. Cluster origins/replicas register explicitly
// via AddStatsSource.

// handlePrometheus serves the metric tree in the Prometheus text
// exposition format (0.0.4). It is a bridge, not a registry: families are
// built at scrape time from the same expvar tree /metrics serves as JSON,
// so the two endpoints can never disagree.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteExposition(w, s.promFamilies()); err != nil {
		s.log.Warn("write prometheus exposition", "err", err)
	}
}

// promFamilies assembles the full family set: request counters, latency
// histograms, cache and verify counters, freshness gauges, tracer and
// tracker stats, and Go runtime health.
func (s *Server) promFamilies() []obs.MetricFamily {
	m := s.metrics
	fams := []obs.MetricFamily{
		mapCounter(promNamespace+"requests_total", "HTTP requests by route.", m.requests, "route"),
		mapCounter(promNamespace+"responses_total", "HTTP responses by status class.", m.status, "class"),
		mapCounter(promNamespace+"verify_outcomes_total", "Per-store verify verdicts by outcome.", m.outcomes, "outcome"),
		cacheCounter(promNamespace+"cache_events_total", m.cache),
		s.latencyHistogram(),
		obs.GaugeFamily(promNamespace+"in_flight_requests", "Requests currently being served.", float64(m.inFlight.Value())),
		obs.CounterFamily(promNamespace+"verdicts_total", "Per-store verdicts computed, including cache hits.", float64(m.verified.Value())),
		obs.CounterFamily(promNamespace+"batches_total", "Batch verify requests started.", float64(m.batchBatches.Value())),
		obs.CounterFamily(promNamespace+"batch_lines_total", "NDJSON lines consumed by /v1/verify/batch.", float64(m.batchLines.Value())),
		obs.CounterFamily(promNamespace+"batch_verdicts_total", "Verdict rows streamed by /v1/verify/batch.", float64(m.batchVerdicts.Value())),
		obs.CounterFamily(promNamespace+"batch_rejected_lines_total", "Batch lines answered with a per-line error.", float64(m.batchRejects.Value())),
		obs.GaugeFamily(promNamespace+"batch_queue_depth", "Batch jobs queued between reader and writer.", float64(m.batchQueue.Value())),
		mapCounter(promNamespace+"simulate_events_total", "What-if events evaluated by kind.", m.simEvents, "kind"),
		obs.CounterFamily(promNamespace+"simulate_sweeps_total", "Sweep rankings served (cached or fresh).", float64(m.simSweeps.Value())),
		obs.CounterFamily(promNamespace+"simulate_sweep_builds_total", "Sweep rankings computed (at most one per generation).", float64(m.simSweepBuilds.Value())),
		obs.GaugeFamily(promNamespace+"simulate_sweep_pairs", "Scenario pairs in the latest sweep ranking.", float64(m.simSweepPairs.Value())),
		obs.GaugeFamily(promNamespace+"simulate_sweep_build_seconds", "Wall time of the latest sweep ranking build.", m.simSweepBuildMs.Value()/1000),
		obs.CounterFamily(promNamespace+"rejected_total", "Requests refused before verification (4xx).", float64(m.rejected.Value())),
		obs.CounterFamily(promNamespace+"errors_total", "Responses that failed server-side (5xx).", float64(m.errors.Value())),
		obs.CounterFamily(promNamespace+"reloads_total", "Database hot swaps installed after startup.", float64(m.reloads.Value())),
		obs.GaugeFamily(promNamespace+"event_watchers", "Live /v1/events/watch streams.", float64(m.watchers.Value())),
		obs.GaugeFamily(promNamespace+"uptime_seconds", "Seconds since the server started.", time.Since(m.startedAt).Seconds()),
		s.providerLagFamily(),
		s.providerKindsFamily(),
		obs.CounterFamily(promNamespace+"traces_started_total", "Request traces started.", float64(s.tracer.Started())),
		obs.GaugeFamily(promNamespace+"generation_epoch", "Cluster epoch of the serving generation.", float64(s.cur().epoch)),
	}
	fams = append(fams, s.sloFamilies()...)
	if sp, ok := s.events.(StatsSource); ok {
		fams = append(fams, sp.StatsFamilies(promNamespace)...)
	}
	for _, sp := range s.extraStats {
		fams = append(fams, sp.StatsFamilies(promNamespace)...)
	}
	return append(fams, obs.RuntimeFamilies()...)
}

// providerLagFamily renders each provider's snapshot staleness, computed
// at scrape time (satellite of the paper's update-lag measurement): a
// provider whose series climbs unbounded has stopped publishing.
func (s *Server) providerLagFamily() obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: promNamespace + "provider_lag_seconds",
		Help: "Seconds since each provider's newest snapshot date.",
		Type: obs.Gauge,
	}
	lag, _ := s.metrics.providerLag().(map[string]int64)
	for name, secs := range lag {
		fam.Samples = append(fam.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "provider", Value: name}},
			Value:  float64(secs),
		})
	}
	return fam
}

// providerKindsFamily counts serving providers by ecosystem kind — the
// scrape-time view of which trust ecosystems (TLS stores, CT logs,
// vendor manifests) this instance is serving.
func (s *Server) providerKindsFamily() obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: promNamespace + "provider_kinds",
		Help: "Serving providers by ecosystem kind.",
		Type: obs.Gauge,
	}
	kinds, _ := s.metrics.providerKinds().(map[string]int)
	names := make([]string, 0, len(kinds))
	for kind := range kinds {
		names = append(names, kind)
	}
	sort.Strings(names)
	for _, kind := range names {
		fam.Samples = append(fam.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "kind", Value: kind}},
			Value:  float64(kinds[kind]),
		})
	}
	return fam
}

// latencyHistogram renders the per-route HDR histograms as one
// Prometheus histogram family with a route label. Buckets use the shared
// obs.HDRBounds layout (identical to cmd/loadgen's client-side capture),
// and buckets that hold a traced observation carry its trace ID as an
// OpenMetrics-style exemplar, resolvable at
// /debug/traces?trace_id=<id>. Routes that served no requests yet are
// skipped to keep the exposition compact.
func (s *Server) latencyHistogram() obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: promNamespace + "request_duration_seconds",
		Help: "HTTP request latency by route (shared HDR log-linear buckets).",
		Type: obs.Histogram,
	}
	bounds := obs.HDRBounds()
	routes := make([]string, 0, len(s.metrics.routes))
	for r, h := range s.metrics.routes {
		if h.TotalCount() > 0 {
			routes = append(routes, r)
		}
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := s.metrics.routes[r]
		snap := h.Snapshot()
		fam.Samples = append(fam.Samples, obs.HistogramSamplesExemplars(
			[]obs.Label{{Name: "route", Value: r}}, bounds, snap.Counts, snap.SumSeconds, h.Exemplars())...)
	}
	return fam
}

// sloFamilies derives the trustd_slo_* families from the minute ring at
// scrape time: the SLO definitions as gauges (so alert rules can read
// targets off the exposition instead of hard-coding them) plus
// multi-window burn rates for the fast-burn/slow-burn alerting pair.
func (s *Server) sloFamilies() []obs.MetricFamily {
	burn := obs.MetricFamily{
		Name: promNamespace + "slo_burn_rate",
		Help: "Error-budget burn rate by SLO and window (1.0 = consuming budget exactly at the sustainable rate).",
		Type: obs.Gauge,
	}
	win := obs.MetricFamily{
		Name: promNamespace + "slo_window_requests",
		Help: "Requests observed in each burn-rate window.",
		Type: obs.Gauge,
	}
	for _, w := range sloWindows {
		avail, lat, req := s.metrics.slo.burnRates(w.minutes)
		burn.Samples = append(burn.Samples,
			obs.Sample{Labels: []obs.Label{{Name: "slo", Value: "availability"}, {Name: "window", Value: w.label}}, Value: avail},
			obs.Sample{Labels: []obs.Label{{Name: "slo", Value: "latency"}, {Name: "window", Value: w.label}}, Value: lat},
		)
		win.Samples = append(win.Samples,
			obs.Sample{Labels: []obs.Label{{Name: "window", Value: w.label}}, Value: float64(req)})
	}
	return []obs.MetricFamily{
		obs.GaugeFamily(promNamespace+"slo_availability_target", "Availability SLO: fraction of requests that must not be 5xx.", sloAvailabilityTarget),
		obs.GaugeFamily(promNamespace+"slo_latency_target", "Latency SLO: fraction of requests that must finish within the threshold.", sloLatencyTarget),
		obs.GaugeFamily(promNamespace+"slo_latency_threshold_seconds", "Latency SLO threshold.", sloLatencyThreshold.Seconds()),
		burn,
		win,
	}
}

// mapCounter flattens an expvar.Map of integer counters into one labelled
// counter family.
func mapCounter(name, help string, m *expvar.Map, label string) obs.MetricFamily {
	fam := obs.MetricFamily{Name: name, Help: help, Type: obs.Counter}
	m.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			fam.Samples = append(fam.Samples, obs.Sample{
				Labels: []obs.Label{{Name: label, Value: kv.Key}},
				Value:  float64(v.Value()),
			})
		}
	})
	return fam
}

// cacheCounter splits keys like "verdict_hits" / "verifier_misses" into
// {cache="verdict",result="hit"} series.
func cacheCounter(name string, m *expvar.Map) obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: name,
		Help: "Cache lookups by cache and result.",
		Type: obs.Counter,
	}
	m.Do(func(kv expvar.KeyValue) {
		v, ok := kv.Value.(*expvar.Int)
		if !ok {
			return
		}
		cache, result := kv.Key, "other"
		if c, ok := strings.CutSuffix(kv.Key, "_hits"); ok {
			cache, result = c, "hit"
		} else if c, ok := strings.CutSuffix(kv.Key, "_misses"); ok {
			cache, result = c, "miss"
		}
		fam.Samples = append(fam.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "cache", Value: cache}, {Name: "result", Value: result}},
			Value:  float64(v.Value()),
		})
	})
	return fam
}
