package service

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// promNamespace prefixes every family the server exports, so a Prometheus
// scraping several services can tell trustd's request counters apart.
const promNamespace = "trustd_"

// The event feed (tracker) may also implement StatsSource — reload
// durations, event counts. The server only type-asserts; it never
// requires the capability. Cluster origins/replicas register explicitly
// via AddStatsSource.

// handlePrometheus serves the metric tree in the Prometheus text
// exposition format (0.0.4). It is a bridge, not a registry: families are
// built at scrape time from the same expvar tree /metrics serves as JSON,
// so the two endpoints can never disagree.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteExposition(w, s.promFamilies()); err != nil {
		s.log.Warn("write prometheus exposition", "err", err)
	}
}

// promFamilies assembles the full family set: request counters, latency
// histograms, cache and verify counters, freshness gauges, tracer and
// tracker stats, and Go runtime health.
func (s *Server) promFamilies() []obs.MetricFamily {
	m := s.metrics
	fams := []obs.MetricFamily{
		mapCounter(promNamespace+"requests_total", "HTTP requests by route.", m.requests, "route"),
		mapCounter(promNamespace+"responses_total", "HTTP responses by status class.", m.status, "class"),
		mapCounter(promNamespace+"verify_outcomes_total", "Per-store verify verdicts by outcome.", m.outcomes, "outcome"),
		cacheCounter(promNamespace+"cache_events_total", m.cache),
		s.latencyHistogram(),
		obs.GaugeFamily(promNamespace+"in_flight_requests", "Requests currently being served.", float64(m.inFlight.Value())),
		obs.CounterFamily(promNamespace+"verdicts_total", "Per-store verdicts computed, including cache hits.", float64(m.verified.Value())),
		obs.CounterFamily(promNamespace+"batches_total", "Batch verify requests started.", float64(m.batchBatches.Value())),
		obs.CounterFamily(promNamespace+"batch_lines_total", "NDJSON lines consumed by /v1/verify/batch.", float64(m.batchLines.Value())),
		obs.CounterFamily(promNamespace+"batch_verdicts_total", "Verdict rows streamed by /v1/verify/batch.", float64(m.batchVerdicts.Value())),
		obs.CounterFamily(promNamespace+"batch_rejected_lines_total", "Batch lines answered with a per-line error.", float64(m.batchRejects.Value())),
		obs.GaugeFamily(promNamespace+"batch_queue_depth", "Batch jobs queued between reader and writer.", float64(m.batchQueue.Value())),
		mapCounter(promNamespace+"simulate_events_total", "What-if events evaluated by kind.", m.simEvents, "kind"),
		obs.CounterFamily(promNamespace+"simulate_sweeps_total", "Sweep rankings served (cached or fresh).", float64(m.simSweeps.Value())),
		obs.CounterFamily(promNamespace+"simulate_sweep_builds_total", "Sweep rankings computed (at most one per generation).", float64(m.simSweepBuilds.Value())),
		obs.GaugeFamily(promNamespace+"simulate_sweep_pairs", "Scenario pairs in the latest sweep ranking.", float64(m.simSweepPairs.Value())),
		obs.GaugeFamily(promNamespace+"simulate_sweep_build_seconds", "Wall time of the latest sweep ranking build.", m.simSweepBuildMs.Value()/1000),
		obs.CounterFamily(promNamespace+"rejected_total", "Requests refused before verification (4xx).", float64(m.rejected.Value())),
		obs.CounterFamily(promNamespace+"errors_total", "Responses that failed server-side (5xx).", float64(m.errors.Value())),
		obs.CounterFamily(promNamespace+"reloads_total", "Database hot swaps installed after startup.", float64(m.reloads.Value())),
		obs.GaugeFamily(promNamespace+"event_watchers", "Live /v1/events/watch streams.", float64(m.watchers.Value())),
		obs.GaugeFamily(promNamespace+"uptime_seconds", "Seconds since the server started.", time.Since(m.startedAt).Seconds()),
		s.providerLagFamily(),
		s.providerKindsFamily(),
		obs.CounterFamily(promNamespace+"traces_started_total", "Request traces started.", float64(s.tracer.Started())),
		obs.GaugeFamily(promNamespace+"generation_epoch", "Cluster epoch of the serving generation.", float64(s.cur().epoch)),
	}
	if sp, ok := s.events.(StatsSource); ok {
		fams = append(fams, sp.StatsFamilies(promNamespace)...)
	}
	for _, sp := range s.extraStats {
		fams = append(fams, sp.StatsFamilies(promNamespace)...)
	}
	return append(fams, obs.RuntimeFamilies()...)
}

// providerLagFamily renders each provider's snapshot staleness, computed
// at scrape time (satellite of the paper's update-lag measurement): a
// provider whose series climbs unbounded has stopped publishing.
func (s *Server) providerLagFamily() obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: promNamespace + "provider_lag_seconds",
		Help: "Seconds since each provider's newest snapshot date.",
		Type: obs.Gauge,
	}
	lag, _ := s.metrics.providerLag().(map[string]int64)
	for name, secs := range lag {
		fam.Samples = append(fam.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "provider", Value: name}},
			Value:  float64(secs),
		})
	}
	return fam
}

// providerKindsFamily counts serving providers by ecosystem kind — the
// scrape-time view of which trust ecosystems (TLS stores, CT logs,
// vendor manifests) this instance is serving.
func (s *Server) providerKindsFamily() obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: promNamespace + "provider_kinds",
		Help: "Serving providers by ecosystem kind.",
		Type: obs.Gauge,
	}
	kinds, _ := s.metrics.providerKinds().(map[string]int)
	names := make([]string, 0, len(kinds))
	for kind := range kinds {
		names = append(names, kind)
	}
	sort.Strings(names)
	for _, kind := range names {
		fam.Samples = append(fam.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "kind", Value: kind}},
			Value:  float64(kinds[kind]),
		})
	}
	return fam
}

// latencyHistogram converts the expvar latency map — per-route flat keys
// like "POST /v1/verify|le_25ms" — into one Prometheus histogram family
// with a route label, rescaled from milliseconds to base-unit seconds.
func (s *Server) latencyHistogram() obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: promNamespace + "request_duration_seconds",
		Help: "HTTP request latency by route.",
		Type: obs.Histogram,
	}
	type hist struct {
		counts []uint64
		sum    float64
	}
	perRoute := map[string]*hist{}
	bucketIdx := make(map[string]int, len(latencyBuckets)+1)
	for i, le := range latencyBuckets {
		bucketIdx[fmt.Sprintf("le_%gms", le)] = i
	}
	bucketIdx["le_inf"] = len(latencyBuckets)

	s.metrics.latency.Do(func(kv expvar.KeyValue) {
		route, bucket := routeOf(kv.Key)
		if route == "" {
			return // aggregate keys: derivable in PromQL with sum without (route)
		}
		h := perRoute[route]
		if h == nil {
			h = &hist{counts: make([]uint64, len(latencyBuckets)+1)}
			perRoute[route] = h
		}
		switch v := kv.Value.(type) {
		case *expvar.Int:
			if i, ok := bucketIdx[bucket]; ok {
				h.counts[i] = uint64(v.Value())
			}
		case *expvar.Float:
			if bucket == "sum_ms" {
				h.sum = v.Value() / 1000
			}
		}
	})

	bounds := make([]float64, len(latencyBuckets))
	for i, le := range latencyBuckets {
		bounds[i] = le / 1000
	}
	routes := make([]string, 0, len(perRoute))
	for r := range perRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := perRoute[r]
		fam.Samples = append(fam.Samples,
			obs.HistogramSamples([]obs.Label{{Name: "route", Value: r}}, bounds, h.counts, h.sum)...)
	}
	return fam
}

// mapCounter flattens an expvar.Map of integer counters into one labelled
// counter family.
func mapCounter(name, help string, m *expvar.Map, label string) obs.MetricFamily {
	fam := obs.MetricFamily{Name: name, Help: help, Type: obs.Counter}
	m.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			fam.Samples = append(fam.Samples, obs.Sample{
				Labels: []obs.Label{{Name: label, Value: kv.Key}},
				Value:  float64(v.Value()),
			})
		}
	})
	return fam
}

// cacheCounter splits keys like "verdict_hits" / "verifier_misses" into
// {cache="verdict",result="hit"} series.
func cacheCounter(name string, m *expvar.Map) obs.MetricFamily {
	fam := obs.MetricFamily{
		Name: name,
		Help: "Cache lookups by cache and result.",
		Type: obs.Counter,
	}
	m.Do(func(kv expvar.KeyValue) {
		v, ok := kv.Value.(*expvar.Int)
		if !ok {
			return
		}
		cache, result := kv.Key, "other"
		if c, ok := strings.CutSuffix(kv.Key, "_hits"); ok {
			cache, result = c, "hit"
		} else if c, ok := strings.CutSuffix(kv.Key, "_misses"); ok {
			cache, result = c, "miss"
		}
		fam.Samples = append(fam.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "cache", Value: cache}, {Name: "result", Value: result}},
			Value:  float64(v.Value()),
		})
	})
	return fam
}
