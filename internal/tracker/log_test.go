package tracker

import (
	"path/filepath"
	"testing"
	"time"
)

func ev(provider string, typ Type, sev Severity, fp string) Event {
	return Event{
		Type: typ, Severity: sev, Provider: provider, Version: "v",
		Date: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), Fingerprint: fp,
	}
}

func TestLogAppendAndFilters(t *testing.T) {
	l, err := NewLog(LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(ev("NSS", RootRemoved, SeverityHigh, "aa"))
	l.Append(ev("Debian", RootAdded, SeverityInfo, "bb"))
	l.Append(ev("NSS", SnapshotIngested, SeverityInfo, ""))

	if got := l.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	for i, e := range l.Replay(Filter{}) {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if got := len(l.Replay(Filter{Provider: "NSS"})); got != 2 {
		t.Errorf("provider filter = %d, want 2", got)
	}
	if got := len(l.Replay(Filter{Type: RootRemoved})); got != 1 {
		t.Errorf("type filter = %d, want 1", got)
	}
	if got := len(l.Replay(Filter{MinSeverity: SeverityMedium})); got != 1 {
		t.Errorf("severity filter = %d, want 1", got)
	}
	if got := len(l.Replay(Filter{SinceSeq: 2})); got != 1 {
		t.Errorf("since filter = %d, want 1", got)
	}
	if got := len(l.Replay(Filter{Fingerprint: "bb"})); got != 1 {
		t.Errorf("fingerprint filter = %d, want 1", got)
	}
	if got := l.Replay(Filter{Limit: 2}); len(got) != 2 || got[0].Seq != 2 {
		t.Errorf("limit filter keeps the tail: %+v", got)
	}
}

func TestLogPersistAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := NewLog(LogOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(ev("NSS", RootRemoved, SeverityHigh, "aa"))
	l.Append(ev("NSS", RootAdded, SeverityInfo, "bb"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewLog(LogOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 || re.LastSeq() != 2 {
		t.Fatalf("reloaded log: len=%d last=%d", re.Len(), re.LastSeq())
	}
	got := re.Replay(Filter{Type: RootRemoved})
	if len(got) != 1 || got[0].Severity != SeverityHigh || got[0].Fingerprint != "aa" {
		t.Fatalf("reloaded event mangled: %+v", got)
	}
	// Sequence numbering continues where the previous process stopped.
	third, err := re.Append(ev("NSS", RootRemoved, SeverityMedium, "cc"))
	if err != nil {
		t.Fatal(err)
	}
	if third.Seq != 3 {
		t.Errorf("resumed seq = %d, want 3", third.Seq)
	}
}

func TestLogCapEvictsOldest(t *testing.T) {
	l, err := NewLog(LogOptions{Cap: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append(ev("NSS", RootAdded, SeverityInfo, "x"))
	}
	if l.Len() != 3 || l.Evicted() != 2 {
		t.Fatalf("len=%d evicted=%d, want 3/2", l.Len(), l.Evicted())
	}
	got := l.Replay(Filter{})
	if got[0].Seq != 3 || got[len(got)-1].Seq != 5 {
		t.Fatalf("window = [%d..%d], want [3..5]", got[0].Seq, got[len(got)-1].Seq)
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{SeverityInfo, SeverityNotice, SeverityMedium, SeverityHigh} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %s: %v %v", s, got, err)
		}
	}
	if _, err := ParseSeverity("apocalyptic"); err == nil {
		t.Error("unknown severity should not parse")
	}
}
