package tracker

// Severity classification, modeled on the paper's removal triage: Table 7
// grades NSS removals low/medium/high, and Table 4 shows that the removals
// that matter most are the ones for roots other programs still carry —
// those are the windows in which derivative users stay exposed. The
// classifier therefore keys on cross-store presence at the event date plus
// an optional external removal catalog (the CCADB "Removed CA Report"
// analog core.CompareRemovals audits).

import "repro/internal/store"

// Classifier assigns severities to events.
type Classifier struct {
	// Listed marks fingerprints (lower-case hex) appearing in an external
	// removal/incident catalog — the CCADB-listed analog. Removal of a
	// listed root is always high severity.
	Listed map[string]bool
}

// classify stamps ev.Severity. holders is the list of other providers
// still trusting the root at the event date (already on the event).
func (c Classifier) classify(ev *Event) {
	switch ev.Type {
	case RootRemoved:
		// A removal while the root is CCADB-listed or still held by ≥2
		// programs (remover + at least one other) is the paper's
		// high-severity case: clients on the laggard stores keep
		// accepting what the remover just distrusted.
		if c.Listed[ev.Fingerprint] || len(ev.Holders) >= 1 {
			ev.Severity = SeverityHigh
		} else {
			ev.Severity = SeverityMedium
		}
	case DistrustAfterSet:
		// Symantec-style partial distrust: the root stays in the store
		// but future issuance dies — always a deliberate, urgent program
		// action (§6.2).
		ev.Severity = SeverityHigh
	case DistrustAfterCleared:
		ev.Severity = SeverityNotice
	case TrustChanged:
		ev.Severity = trustChangeSeverity(ev.OldLevel, ev.NewLevel)
	case RootAdded:
		ev.Severity = SeverityInfo
	case SnapshotIngested:
		ev.Severity = SeverityInfo
	}
}

// trustChangeSeverity grades a per-purpose level transition.
func trustChangeSeverity(oldName, newName string) Severity {
	old, _ := store.ParseTrustLevel(oldName)
	nw, _ := store.ParseTrustLevel(newName)
	switch {
	case nw == store.Distrusted:
		return SeverityHigh
	case old == store.Trusted && nw != store.Trusted:
		// Demotion from full anchor status (to must-verify/unspecified).
		return SeverityMedium
	case nw == store.Trusted && old != store.Trusted:
		// A new trust grant widens the attack surface but breaks nobody.
		return SeverityNotice
	default:
		return SeverityInfo
	}
}
