package tracker

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/store"
)

// DefaultInterval is the poll cadence when Config.Interval is zero.
const DefaultInterval = 2 * time.Second

// Config wires a Tracker.
type Config struct {
	// Source enumerates snapshot directories (required). DirSource polls
	// a local catalog.TreeLayout tree.
	Source Source
	// Catalog tunes snapshot ingestion (JKS password, bundle purposes).
	Catalog catalog.Options
	// Interval is the poll cadence (DefaultInterval when 0).
	Interval time.Duration
	// Log receives events; a private in-memory log is created when nil.
	Log *Log
	// OnReload is called with the freshly ingested database after every
	// change batch, before the batch's events are appended and published
	// — the hot-swap hook cmd/trustd points at Server.Swap so queries
	// never observe events for state they cannot see yet.
	OnReload func(*store.Database)
	// Classifier grades event severity (zero value: cross-store holders
	// only, no external catalog).
	Classifier Classifier
	// Logger receives operational logs; slog.Default() when nil.
	Logger *slog.Logger
	// Tracer records a trace per change-processing Rescan (polls that find
	// nothing are discarded, not recorded). Nil disables tracing — every
	// span call is inert.
	Tracer *obs.Tracer
	// Now is the wall clock (test hook; time.Now when nil).
	Now func() time.Time
}

// Tracker watches a snapshot source, ingests changes through the catalog,
// and turns them into classified events. One Rescan is one atomic batch:
// scan → full catalog reload → per-snapshot diffs → OnReload swap →
// append + publish.
type Tracker struct {
	cfg Config
	log *Log
	bus *Bus

	mu       sync.Mutex
	seen     map[string]stamp // SnapshotDir.Key() → change stamp
	db       *store.Database
	removals map[string]*removalRecord

	// Pipeline counters, written with atomics so Stats and StatsFamilies
	// can be served from any goroutine without taking mu.
	statRescans       atomic.Uint64
	statReloads       atomic.Uint64
	statEvents        atomic.Uint64
	statLastReloadNS  atomic.Int64
	statReloadTotalNS atomic.Int64
}

// stamp is the change detector for one snapshot directory: a same-second
// rewrite escapes mtime granularity but moves the size, and either moving
// (in any direction — mtimes go backwards when trees are restored from
// archives) marks the directory changed.
type stamp struct {
	mod  time.Time
	size int64
}

func (s stamp) differs(d SnapshotDir) bool {
	return !d.ModTime.Equal(s.mod) || d.Size != s.size
}

// removalRecord is the live responsiveness ledger for one removed root:
// who dropped it first and when each store followed — Table 4's deltas.
type removalRecord struct {
	label         string
	firstProvider string
	firstDate     time.Time
	perProvider   map[string]time.Time
}

// New validates the config and returns an idle tracker; call Rescan (or
// Run) to load the initial tree.
func New(cfg Config) (*Tracker, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("tracker: Config.Source is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	l := cfg.Log
	if l == nil {
		var err error
		if l, err = NewLog(LogOptions{}); err != nil {
			return nil, err
		}
	}
	return &Tracker{
		cfg:      cfg,
		log:      l,
		bus:      NewBus(),
		seen:     make(map[string]stamp),
		removals: make(map[string]*removalRecord),
	}, nil
}

// Log exposes the event log for replay.
func (t *Tracker) Log() *Log { return t.log }

// Subscribe attaches a live event listener (see Bus.Subscribe).
func (t *Tracker) Subscribe(buffer int) (<-chan Event, func()) {
	return t.bus.Subscribe(buffer)
}

// Replay delegates to the event log — with Subscribe and LastSeq it makes
// *Tracker satisfy service.EventFeed.
func (t *Tracker) Replay(f Filter) []Event { return t.log.Replay(f) }

// LastSeq returns the newest event sequence number.
func (t *Tracker) LastSeq() uint64 { return t.log.LastSeq() }

// Epoch counts completed ingests (initial Rescan included): a local
// generation clock for the database this tracker produces. Note it lags by
// one inside an OnReload hook, which fires before the reload's bookkeeping
// closes — cluster origins therefore keep their own publish epoch and use
// this only as a coarse progress signal.
func (t *Tracker) Epoch() uint64 { return t.statReloads.Load() }

// Database returns the most recently ingested database (nil before the
// first successful Rescan). The returned database is immutable: every
// reload builds a fresh one.
func (t *Tracker) Database() *store.Database {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.db
}

// Lag reports, per provider, how far behind the wall clock the provider's
// newest ingested snapshot is — the freshness gauge the serving layer
// exports.
func (t *Tracker) Lag() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration)
	if t.db == nil {
		return out
	}
	now := t.cfg.Now()
	for _, p := range t.db.Providers() {
		if latest := t.db.History(p).Latest(); latest != nil {
			out[p] = now.Sub(latest.Date)
		}
	}
	return out
}

// RemovalRow is one root's live responsiveness record.
type RemovalRow struct {
	Fingerprint   string         `json:"fingerprint"`
	Label         string         `json:"label,omitempty"`
	FirstProvider string         `json:"first_provider"`
	FirstDate     time.Time      `json:"first_date"`
	LagDays       map[string]int `json:"lag_days"`
}

// Responsiveness returns the removal ledger: for every root any store has
// removed, each store's lag in days behind the first remover — the paper's
// Table 4 deltas recomputed continuously from the event stream.
func (t *Tracker) Responsiveness() []RemovalRow {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RemovalRow, 0, len(t.removals))
	for fp, rec := range t.removals {
		row := RemovalRow{
			Fingerprint:   fp,
			Label:         rec.label,
			FirstProvider: rec.firstProvider,
			FirstDate:     rec.firstDate,
			LagDays:       make(map[string]int, len(rec.perProvider)),
		}
		for prov, date := range rec.perProvider {
			row.LagDays[prov] = lagDays(rec.firstDate, date)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstDate.Equal(out[j].FirstDate) {
			return out[i].FirstDate.Before(out[j].FirstDate)
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

func lagDays(first, then time.Time) int {
	return int(then.Sub(first).Hours() / 24)
}

// Run polls the source until ctx is cancelled. Scan or ingest errors are
// logged and retried next tick (a half-written tree settles by itself);
// only ctx cancellation ends the loop.
func (t *Tracker) Run(ctx context.Context) error {
	ticker := time.NewTicker(t.cfg.Interval)
	defer ticker.Stop()
	for {
		if n, err := t.Rescan(); err != nil {
			t.cfg.Logger.Warn("rescan failed; will retry", "err", err)
		} else if n > 0 {
			t.cfg.Logger.Info("ingested", "snapshots", n, "events", t.log.LastSeq())
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// ingest pairs a changed snapshot with the snapshot to diff it against.
type ingest struct {
	snap *store.Snapshot
	prev *store.Snapshot
}

// Rescan performs one scan/ingest cycle and returns how many new or
// modified snapshots it processed. The first call ingests the whole tree,
// replaying each provider's history into the event log chronologically —
// which is exactly how the paper's post-hoc responsiveness tables become a
// live ledger. Subsequent calls reload incrementally: only changed
// directories are re-parsed; every unchanged snapshot is shared with the
// previous generation (store.Snapshot.ShareClone), so a single-provider
// update costs one snapshot's parse no matter how large the tree is.
func (t *Tracker) Rescan() (int, error) {
	start := time.Now()
	t.statRescans.Add(1)
	ctx, trace := t.cfg.Tracer.Start(context.Background(), "tracker.rescan")
	defer trace.End()

	_, scanSpan := obs.StartSpan(ctx, "tracker.scan")
	dirs, err := t.cfg.Source.Scan()
	scanSpan.End()
	if err != nil {
		trace.SetAttr("error", err.Error())
		return 0, err
	}
	trace.SetAttr("dirs", strconv.Itoa(len(dirs)))

	present := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		present[d.Key()] = true
	}

	t.mu.Lock()
	var changed []SnapshotDir
	for _, d := range dirs {
		if st, ok := t.seen[d.Key()]; !ok || st.differs(d) {
			changed = append(changed, d)
		}
	}
	vanished := false
	for key := range t.seen {
		if !present[key] {
			vanished = true
			break
		}
	}
	initial := t.db == nil
	oldDB := t.db
	t.mu.Unlock()

	if len(changed) == 0 && !vanished && !initial {
		// An unremarkable poll — most of a tracker's life. Discarding keeps
		// the trace ring holding only rescans that actually did work.
		trace.Discard()
		return 0, nil
	}
	if len(dirs) == 0 {
		err := fmt.Errorf("tracker: %s holds no snapshot directories", t.cfg.Source.Root())
		trace.SetAttr("error", err.Error())
		return 0, err
	}
	trace.SetAttr("changed", strconv.Itoa(len(changed)))

	var newDB *store.Database
	lctx, loadSpan := obs.StartSpan(ctx, "tracker.load")
	if initial {
		// Cold start: the catalog takes the fast path through a fresh
		// sidecar archive when one exists.
		loadSpan.SetAttr("mode", "full")
		newDB, err = catalog.LoadTreeCtx(lctx, t.cfg.Source.Root(), t.cfg.Catalog)
	} else {
		loadSpan.SetAttr("mode", "splice")
		newDB, err = t.spliceReload(lctx, dirs, changed, oldDB)
	}
	loadSpan.End()
	if err != nil {
		trace.SetAttr("error", err.Error())
		return 0, err
	}

	t.mu.Lock()
	defer t.mu.Unlock()

	for key := range t.seen {
		if !present[key] {
			delete(t.seen, key)
		}
	}

	ingests := make([]ingest, 0, len(changed))
	for _, d := range changed {
		snap := snapshotByVersion(newDB, d.Provider, d.Version)
		if snap == nil {
			// The directory vanished between scan and reload; next scan
			// reconciles.
			continue
		}
		var prev *store.Snapshot
		if _, wasSeen := t.seen[d.Key()]; wasSeen && oldDB != nil {
			// Modified in place: diff against what we served before.
			prev = snapshotByVersion(oldDB, d.Provider, d.Version)
		} else {
			prev = predecessorOf(newDB.History(d.Provider), snap)
		}
		ingests = append(ingests, ingest{snap: snap, prev: prev})
		t.seen[d.Key()] = stamp{mod: d.ModTime, size: d.Size}
	}
	// Chronological emission across providers keeps the removal ledger's
	// "first remover" truthful during history replay.
	sort.Slice(ingests, func(i, j int) bool {
		a, b := ingests[i].snap, ingests[j].snap
		if !a.Date.Equal(b.Date) {
			return a.Date.Before(b.Date)
		}
		return a.Key() < b.Key()
	})

	t.db = newDB
	_, swapSpan := obs.StartSpan(ctx, "tracker.swap")
	if t.cfg.OnReload != nil {
		t.cfg.OnReload(newDB)
	}
	swapSpan.End()

	_, classifySpan := obs.StartSpan(ctx, "tracker.classify")
	defer classifySpan.End()
	var emitted int
	observed := t.cfg.Now()
	for _, ing := range ingests {
		for _, ev := range t.eventsFor(ing.snap, ing.prev, newDB, observed) {
			stamped, err := t.log.Append(ev)
			if err != nil {
				t.finishReload(start, emitted, trace, classifySpan)
				return len(ingests), err
			}
			t.bus.Publish(stamped)
			emitted++
		}
	}
	t.finishReload(start, emitted, trace, classifySpan)
	return len(ingests), nil
}

// finishReload closes out one change-processing rescan's bookkeeping:
// reload counters, durations, and the event count on the trace.
func (t *Tracker) finishReload(start time.Time, emitted int, trace, classifySpan *obs.Span) {
	elapsed := time.Since(start)
	t.statReloads.Add(1)
	t.statEvents.Add(uint64(emitted))
	t.statLastReloadNS.Store(int64(elapsed))
	t.statReloadTotalNS.Add(int64(elapsed))
	classifySpan.SetAttr("events", strconv.Itoa(emitted))
	trace.SetAttr("events", strconv.Itoa(emitted))
}

// spliceReload builds the next database generation by re-parsing only the
// changed snapshot directories and sharing every other snapshot with the
// previous generation. Sharing goes through ShareClone so the new
// generation's interner attachment and bitset memos never touch snapshots
// the old generation is still serving.
func (t *Tracker) spliceReload(ctx context.Context, dirs, changed []SnapshotDir, oldDB *store.Database) (*store.Database, error) {
	changedKeys := make(map[string]bool, len(changed))
	for _, d := range changed {
		changedKeys[d.Key()] = true
	}
	newDB := store.NewDatabase()
	for _, d := range dirs {
		var snap *store.Snapshot
		if !changedKeys[d.Key()] && oldDB != nil {
			if old := snapshotByVersion(oldDB, d.Provider, d.Version); old != nil {
				snap = old.ShareClone()
			}
		}
		if snap == nil {
			s, _, err := catalog.LoadVersionDirCtx(ctx, t.cfg.Source.Root(), d.Provider, d.Version, t.cfg.Catalog)
			if err != nil {
				return nil, fmt.Errorf("tracker: %s: %w", d.Key(), err)
			}
			snap = s
		}
		if err := newDB.AddSnapshot(snap); err != nil {
			return nil, err
		}
	}
	// Keep the next cold start fast: recompile the sidecar from the spliced
	// database (best-effort; no-op under ArchiveOff).
	if err := catalog.RefreshArchiveCtx(ctx, t.cfg.Source.Root(), newDB, t.cfg.Catalog); err != nil {
		t.cfg.Logger.Warn("sidecar archive refresh failed", "err", err)
	}
	return newDB, nil
}

// eventsFor builds the classified event batch for one new snapshot.
// Callers hold t.mu.
func (t *Tracker) eventsFor(snap, prev *store.Snapshot, db *store.Database, observed time.Time) []Event {
	base := Event{
		Provider:   snap.Provider,
		Version:    snap.Version,
		Date:       snap.Date,
		ObservedAt: observed,
	}
	if prev != nil {
		base.PrevVersion = prev.Version
	}

	marker := base
	marker.Type = SnapshotIngested
	marker.Detail = fmt.Sprintf("%d roots", snap.Len())
	events := []Event{marker}

	if prev == nil {
		// A provider's first snapshot: the whole store "appearing" is an
		// ingest marker, not hundreds of root-added events.
		t.cfg.Classifier.classify(&events[0])
		return events
	}

	d := store.DiffSnapshots(prev, snap)
	events[0].Detail = fmt.Sprintf("%d roots, %s vs %s", snap.Len(), d, prev.Version)

	for _, e := range d.Added {
		ev := base
		ev.Type = RootAdded
		ev.Fingerprint = e.Fingerprint.String()
		ev.Label = e.Label
		events = append(events, ev)
	}
	for _, e := range d.Removed {
		ev := base
		ev.Type = RootRemoved
		ev.Fingerprint = e.Fingerprint.String()
		ev.Label = e.Label
		ev.Holders = holdersOf(db, e.Fingerprint.String(), snap.Date, snap.Provider)
		t.recordRemoval(&ev)
		events = append(events, ev)
	}
	for _, tc := range d.TrustChanges {
		ev := base
		ev.Fingerprint = tc.Fingerprint.String()
		ev.Label = tc.Label
		ev.Purpose = tc.Purpose.String()
		ev.OldLevel = tc.Old.String()
		ev.NewLevel = tc.New.String()
		switch {
		case tc.DistrustAfterSet:
			ev.Type = DistrustAfterSet
			cutoff := tc.DistrustAfter
			ev.DistrustAfter = &cutoff
		case tc.DistrustAfterCleared:
			ev.Type = DistrustAfterCleared
		default:
			ev.Type = TrustChanged
		}
		events = append(events, ev)
	}
	for i := range events {
		t.cfg.Classifier.classify(&events[i])
	}
	return events
}

// recordRemoval updates the responsiveness ledger and stamps the event
// with its lag behind the first remover. Callers hold t.mu.
func (t *Tracker) recordRemoval(ev *Event) {
	rec, ok := t.removals[ev.Fingerprint]
	if !ok {
		rec = &removalRecord{
			label:         ev.Label,
			firstProvider: ev.Provider,
			firstDate:     ev.Date,
			perProvider:   make(map[string]time.Time),
		}
		t.removals[ev.Fingerprint] = rec
	}
	if _, dup := rec.perProvider[ev.Provider]; !dup {
		rec.perProvider[ev.Provider] = ev.Date
	}
	lag := lagDays(rec.firstDate, ev.Date)
	ev.LagDays = &lag
	ev.FirstRemover = rec.firstProvider
}

// holdersOf lists the other providers whose store in force at the event
// date still trusts the root for server auth.
func holdersOf(db *store.Database, fingerprint string, at time.Time, exclude string) []string {
	var holders []string
	for _, p := range db.Providers() {
		if p == exclude {
			continue
		}
		snap := db.History(p).At(at)
		if snap == nil {
			continue
		}
		if e, ok := snap.EntryByFingerprint(fingerprint); ok && e.TrustedFor(store.ServerAuth) {
			holders = append(holders, p)
		}
	}
	return holders
}

// snapshotByVersion finds a provider's snapshot by version label.
func snapshotByVersion(db *store.Database, provider, version string) *store.Snapshot {
	h := db.History(provider)
	if h == nil {
		return nil
	}
	for _, s := range h.Snapshots() {
		if s.Version == version {
			return s
		}
	}
	return nil
}

// predecessorOf returns the snapshot immediately before snap in the
// history's date order, nil for the first.
func predecessorOf(h *store.History, snap *store.Snapshot) *store.Snapshot {
	if h == nil {
		return nil
	}
	var prev *store.Snapshot
	for _, s := range h.Snapshots() {
		if s == snap {
			return prev
		}
		prev = s
	}
	return nil
}
