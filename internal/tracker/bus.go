package tracker

import "sync"

// Bus fans events out to subscribers. Publish never blocks: a subscriber
// whose buffer is full loses the event and its drop counter increments —
// slow consumers degrade themselves, not the ingest path. Subscribers that
// need gapless history should replay the Log from their last seen sequence
// number instead (the /v1/events?since= pattern).
type Bus struct {
	mu   sync.Mutex
	subs map[uint64]*subscriber
	next uint64
}

type subscriber struct {
	ch      chan Event
	dropped uint64
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[uint64]*subscriber)}
}

// Subscribe registers a subscriber with the given channel buffer (minimum
// 1) and returns its event channel plus a cancel function. Cancel closes
// the channel; it is safe to call more than once.
func (b *Bus) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	id := b.next
	b.next++
	sub := &subscriber{ch: make(chan Event, buffer)}
	b.subs[id] = sub
	b.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, id)
			b.mu.Unlock()
			close(sub.ch)
		})
	}
	return sub.ch, cancel
}

// Publish delivers the event to every subscriber, dropping it for full
// buffers.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
		}
	}
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped sums events lost to full subscriber buffers.
func (b *Bus) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n uint64
	for _, sub := range b.subs {
		n += sub.dropped
	}
	return n
}
