package tracker

// Tracing and stats tests: the rescan pipeline's trace anatomy, the
// no-change-poll discard, and the Prometheus families the tracker exports
// through the serving layer's statsProvider hook.

import (
	"io"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
)

func quietTracer() *obs.Tracer {
	return obs.NewTracer(obs.Options{
		SlowThreshold: -1,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
}

// TestRescanTraceAnatomy runs a cold start plus an incremental reload and
// checks each produced one trace with the pipeline's phase spans —
// scan → load (with catalog children) → swap → classify.
func TestRescanTraceAnatomy(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)

	tr := quietTracer()
	trk := newTestTracker(t, root, func(c *Config) {
		c.Tracer = tr
		c.OnReload = func(*store.Database) {}
	})
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	recs := tr.Recent(0)
	if len(recs) != 1 {
		t.Fatalf("traces after cold start = %d, want 1", len(recs))
	}
	names := map[string]int{}
	for _, sp := range recs[0].Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"tracker.rescan", "tracker.scan", "tracker.load", "tracker.swap", "tracker.classify"} {
		if names[want] == 0 {
			t.Errorf("cold-start trace missing span %q (got %v)", want, names)
		}
	}
	// The cold start parses natively (no sidecar yet) and then compiles one.
	if names["catalog.parse"] == 0 {
		t.Errorf("cold-start trace has no catalog.parse span: %v", names)
	}
	if names["archive.compile"] == 0 {
		t.Errorf("cold-start trace has no archive.compile span: %v", names)
	}

	// Incremental change: one provider updates → splice reload trace.
	writePEM(t, root, "Debian", "2020-05-01", trusted(t, 1, 2))
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	recs = tr.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("traces after incremental reload = %d, want 2", len(recs))
	}
	splice := recs[0] // newest first
	var mode string
	for _, sp := range splice.Spans {
		if sp.Name == "tracker.load" {
			for _, a := range sp.Attrs {
				if a.Key == "mode" {
					mode = a.Value
				}
			}
		}
	}
	if mode != "splice" {
		t.Errorf("incremental reload load mode = %q, want splice", mode)
	}
}

// TestNoChangePollDiscardsTrace asserts idle polls leave no trace — the
// ring must hold work, not heartbeats.
func TestNoChangePollDiscardsTrace(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)
	tr := quietTracer()
	trk := newTestTracker(t, root, func(c *Config) { c.Tracer = tr })
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if n, err := trk.Rescan(); err != nil || n != 0 {
			t.Fatalf("idle rescan = (%d, %v)", n, err)
		}
	}
	if got := len(tr.Recent(0)); got != 1 {
		t.Fatalf("traces after idle polls = %d, want 1 (idle polls must discard)", got)
	}
	if st := trk.Stats(); st.Rescans != 4 || st.Reloads != 1 {
		t.Errorf("stats = %+v, want 4 rescans / 1 reload", st)
	}
}

// TestStatsFamiliesLintClean holds the tracker's Prometheus families to
// the same lint bar as the serving layer's.
func TestStatsFamiliesLintClean(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)
	trk := newTestTracker(t, root, nil)
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	fams := trk.StatsFamilies("trustd_")
	if problems := obs.Lint(fams); len(problems) != 0 {
		t.Fatalf("lint: %v", problems)
	}
	byName := map[string]float64{}
	for _, f := range fams {
		if len(f.Samples) == 1 {
			byName[f.Name] = f.Samples[0].Value
		}
	}
	if byName["trustd_tracker_rescans_total"] != 1 {
		t.Errorf("rescans = %v", byName["trustd_tracker_rescans_total"])
	}
	if byName["trustd_tracker_events_emitted_total"] == 0 {
		t.Error("no events counted after history replay")
	}
	if byName["trustd_tracker_last_reload_seconds"] <= 0 {
		t.Error("last reload duration not recorded")
	}
	var sb strings.Builder
	if err := obs.WriteExposition(&sb, fams); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE trustd_tracker_reloads_total counter") {
		t.Errorf("exposition missing reloads family:\n%s", sb.String())
	}
}

// TestNilTracerIsInert proves the tracer hook is fully optional.
func TestNilTracerIsInert(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)
	trk := newTestTracker(t, root, nil) // no tracer
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	if st := trk.Stats(); st.Reloads != 1 {
		t.Errorf("stats without tracer = %+v", st)
	}
}
