package tracker

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// DefaultLogCap bounds the in-memory event window. The JSONL file (when
// configured) keeps the full history; the cap only limits what Replay can
// serve without re-reading disk.
const DefaultLogCap = 65536

// LogOptions tunes an event log.
type LogOptions struct {
	// Path, when non-empty, persists every event as one JSON line and —
	// if the file already exists — reloads its events on open, so a
	// restarted watcher resumes its sequence numbers and replay window.
	Path string
	// Cap bounds in-memory events (DefaultLogCap when 0). Oldest events
	// are evicted from memory first; the JSONL file is never truncated.
	Cap int
}

// Log is the replayable event log: an in-memory window plus optional
// append-only JSONL persistence. Append assigns strictly increasing
// sequence numbers; Replay filters the window. Safe for concurrent use.
type Log struct {
	mu      sync.RWMutex
	events  []Event
	nextSeq uint64
	cap     int
	file    *os.File
	w       *bufio.Writer
	evicted uint64 // events dropped from memory (still on disk)
}

// NewLog opens an event log, reloading any existing JSONL file at
// opts.Path.
func NewLog(opts LogOptions) (*Log, error) {
	l := &Log{nextSeq: 1, cap: opts.Cap}
	if l.cap <= 0 {
		l.cap = DefaultLogCap
	}
	if opts.Path == "" {
		return l, nil
	}
	if data, err := os.ReadFile(opts.Path); err == nil {
		if err := l.load(data); err != nil {
			return nil, fmt.Errorf("tracker: reload %s: %w", opts.Path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("tracker: %w", err)
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tracker: %w", err)
	}
	l.file = f
	l.w = bufio.NewWriter(f)
	return l, nil
}

// load replays persisted JSONL bytes into the memory window.
func (l *Log) load(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		l.events = append(l.events, ev)
		if ev.Seq >= l.nextSeq {
			l.nextSeq = ev.Seq + 1
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	l.trim()
	return nil
}

// Append stamps the event with the next sequence number, persists it and
// returns the stamped copy.
func (l *Log) Append(ev Event) (Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Seq = l.nextSeq
	l.nextSeq++
	l.events = append(l.events, ev)
	l.trim()
	if l.w != nil {
		line, err := json.Marshal(ev)
		if err != nil {
			return ev, fmt.Errorf("tracker: marshal event: %w", err)
		}
		if _, err := l.w.Write(append(line, '\n')); err != nil {
			return ev, fmt.Errorf("tracker: persist event: %w", err)
		}
		if err := l.w.Flush(); err != nil {
			return ev, fmt.Errorf("tracker: persist event: %w", err)
		}
	}
	return ev, nil
}

func (l *Log) trim() {
	if over := len(l.events) - l.cap; over > 0 {
		l.events = append([]Event(nil), l.events[over:]...)
		l.evicted += uint64(over)
	}
}

// Filter selects events for Replay. The zero value matches everything.
type Filter struct {
	Provider    string
	Type        Type
	MinSeverity Severity
	// SinceSeq is exclusive: only events with Seq > SinceSeq match.
	SinceSeq    uint64
	Fingerprint string
	// Limit caps the result from the tail (most recent kept); 0 = all.
	Limit int
}

// Match reports whether the event passes the filter (ignoring Limit).
func (f Filter) Match(ev Event) bool {
	if f.Provider != "" && ev.Provider != f.Provider {
		return false
	}
	if f.Type != "" && ev.Type != f.Type {
		return false
	}
	if ev.Severity < f.MinSeverity {
		return false
	}
	if ev.Seq <= f.SinceSeq {
		return false
	}
	if f.Fingerprint != "" && ev.Fingerprint != f.Fingerprint {
		return false
	}
	return true
}

// Replay returns the matching events in sequence order.
func (l *Log) Replay(f Filter) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, ev := range l.events {
		if f.Match(ev) {
			out = append(out, ev)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = append([]Event(nil), out[len(out)-f.Limit:]...)
	}
	return out
}

// Len returns the in-memory event count.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// LastSeq returns the highest assigned sequence number (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nextSeq - 1
}

// Evicted returns how many events aged out of the memory window.
func (l *Log) Evicted() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.evicted
}

// Close flushes and closes the JSONL file, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.file.Close()
		return err
	}
	err := l.file.Close()
	l.file, l.w = nil, nil
	return err
}
