package tracker

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SnapshotDir is one snapshot directory a source found: a
// <root>/<provider>/<version>/ leaf in the layout internal/catalog
// documents (catalog.TreeLayout).
type SnapshotDir struct {
	Provider string
	Version  string
	Path     string
	// ModTime is the newest modification time across the directory and
	// its files. Together with Size it forms the change stamp the tracker
	// keys rescans on.
	ModTime time.Time
	// Size is the total byte size of the directory's files (one nested
	// level deep, like ModTime's walk). A same-second rewrite that mtime
	// alone cannot distinguish still changes the stamp when the content
	// length moves.
	Size int64
}

// Key identifies the snapshot directory within its tree.
func (d SnapshotDir) Key() string { return d.Provider + "/" + d.Version }

// Source enumerates snapshot directories. DirSource polls a local tree;
// the interface exists so a remote fetcher (rsync mirror, release-archive
// crawler) can plug into the same tracker later: anything that can
// materialize catalog's <provider>/<version>/ layout and report change
// stamps qualifies.
type Source interface {
	// Root is the tree root handed to catalog.LoadTree on reload.
	Root() string
	// Scan lists the settled snapshot directories, sorted by
	// (provider, version). Directories still being written (modified
	// within the settle window) are omitted and picked up next scan.
	Scan() ([]SnapshotDir, error)
}

// DirSource is an fsnotify-style mtime scanner over a local snapshot tree.
// It keeps no OS watch descriptors — each Scan re-walks the two directory
// levels, which for even a 619-snapshot archive is a few hundred stats —
// and instead relies on the tracker's poll loop, trading latency (one poll
// interval) for zero platform dependencies.
type DirSource struct {
	root string
	// settle is how long a snapshot directory must be quiescent before it
	// is reported; it papers over multi-file writers (authroot.stl plus
	// its certs/, Apple roots dirs) being caught mid-copy.
	settle time.Duration
	now    func() time.Time
}

// NewDirSource watches root with the given settle window. A zero settle
// reports directories immediately.
func NewDirSource(root string, settle time.Duration) *DirSource {
	return &DirSource{root: root, settle: settle, now: time.Now}
}

// Root returns the watched tree root.
func (s *DirSource) Root() string { return s.root }

// Scan implements Source.
func (s *DirSource) Scan() ([]SnapshotDir, error) {
	provs, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("tracker: scan %s: %w", s.root, err)
	}
	cutoff := s.now().Add(-s.settle)
	var out []SnapshotDir
	for _, prov := range provs {
		if !prov.IsDir() {
			continue
		}
		provDir := filepath.Join(s.root, prov.Name())
		versions, err := os.ReadDir(provDir)
		if err != nil {
			return nil, fmt.Errorf("tracker: scan %s: %w", provDir, err)
		}
		for _, v := range versions {
			if !v.IsDir() {
				continue
			}
			dir := filepath.Join(provDir, v.Name())
			stamp, size, empty, err := newestModTime(dir)
			if err != nil {
				return nil, err
			}
			if empty {
				continue // nothing ingestable yet
			}
			if s.settle > 0 && stamp.After(cutoff) {
				continue // still being written; next scan gets it
			}
			out = append(out, SnapshotDir{
				Provider: prov.Name(),
				Version:  v.Name(),
				Path:     dir,
				ModTime:  stamp,
				Size:     size,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// newestModTime walks dir one level deep (snapshot formats nest at most
// one subdirectory, e.g. authroot's certs/) and returns the newest mtime
// plus the total file byte size.
func newestModTime(dir string) (stamp time.Time, size int64, empty bool, err error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return time.Time{}, 0, false, fmt.Errorf("tracker: %w", err)
	}
	empty = true
	consider := func(path string, de os.DirEntry) error {
		info, err := de.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil // racing a writer; the next scan settles it
			}
			return fmt.Errorf("tracker: %w", err)
		}
		if info.ModTime().After(stamp) {
			stamp = info.ModTime()
		}
		if !de.IsDir() {
			size += info.Size()
		}
		return nil
	}
	for _, de := range des {
		empty = false
		if err := consider(dir, de); err != nil {
			return time.Time{}, 0, false, err
		}
		if de.IsDir() {
			sub := filepath.Join(dir, de.Name())
			subs, err := os.ReadDir(sub)
			if err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return time.Time{}, 0, false, fmt.Errorf("tracker: %w", err)
			}
			for _, sde := range subs {
				if err := consider(sub, sde); err != nil {
					return time.Time{}, 0, false, err
				}
			}
		}
	}
	return stamp, size, empty, nil
}
