package tracker

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// TestIncrementalReloadSharesUnchangedSnapshots proves the splice path:
// after a single-provider change, the new generation's snapshots for every
// other provider share entry pointers with the old generation — nothing
// unchanged was re-parsed.
func TestIncrementalReloadSharesUnchangedSnapshots(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)

	trk := newTestTracker(t, root, nil)
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	gen1 := trk.Database()

	// Only Debian changes.
	writePEM(t, root, "Debian", "2020-08-01", trusted(t, 1, 2))
	if n, err := trk.Rescan(); err != nil || n != 1 {
		t.Fatalf("rescan: n=%d err=%v, want 1 nil", n, err)
	}
	gen2 := trk.Database()
	if gen2 == gen1 {
		t.Fatal("rescan did not produce a new generation")
	}

	for _, version := range []string{"2020-01-01", "2020-03-01"} {
		s1 := snapshotByVersion(gen1, "NSS", version)
		s2 := snapshotByVersion(gen2, "NSS", version)
		if s1 == nil || s2 == nil {
			t.Fatalf("NSS %s missing from a generation", version)
		}
		if s1 == s2 {
			t.Fatalf("NSS %s: snapshot shell shared across generations (interner attachment would race)", version)
		}
		e1, e2 := s1.Entries(), s2.Entries()
		if len(e1) != len(e2) {
			t.Fatalf("NSS %s: entry counts differ", version)
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Errorf("NSS %s entry %d re-parsed: pointers differ across generations", version, i)
			}
		}
	}

	// The changed provider's new snapshot must exist, freshly parsed.
	if snapshotByVersion(gen2, "Debian", "2020-08-01") == nil {
		t.Fatal("changed snapshot missing from new generation")
	}
	// The old generation must not have been mutated by the splice.
	if snapshotByVersion(gen1, "Debian", "2020-08-01") != nil {
		t.Fatal("old generation grew the new snapshot")
	}
}

// TestSameSecondRewriteDetected pins the size+mtime stamp: rewriting a
// snapshot with different content but an identical mtime (forced via
// Chtimes, the same-second-rewrite race) must still trigger a reload
// because the byte size moved.
func TestSameSecondRewriteDetected(t *testing.T) {
	root := t.TempDir()
	writePEM(t, root, "NSS", "2020-01-01", trusted(t, 0, 1, 2))

	trk := newTestTracker(t, root, nil)
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(root, "NSS", "2020-01-01")
	bundle := filepath.Join(dir, "tls-ca-bundle.pem")
	fi, err := os.Stat(bundle)
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite with one root fewer, then force the mtime back to the exact
	// original stamp on both the file and its directory.
	writePEM(t, root, "NSS", "2020-01-01", trusted(t, 0, 1))
	for _, p := range []string{bundle, dir} {
		if err := os.Chtimes(p, fi.ModTime(), fi.ModTime()); err != nil {
			t.Fatal(err)
		}
	}

	n, err := trk.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("same-mtime rewrite processed %d snapshots, want 1 (size change missed)", n)
	}
	if got := trk.Database().History("NSS").Latest().Len(); got != 2 {
		t.Fatalf("reloaded snapshot has %d roots, want 2", got)
	}

	removals := trk.Replay(Filter{Type: RootRemoved})
	if len(removals) != 1 {
		t.Fatalf("%d removal events, want 1", len(removals))
	}
}

// TestVanishedSnapshotDirPruned: deleting a version directory must shrink
// the next generation and forget the stamp, so the directory reappearing
// later is re-ingested.
func TestVanishedSnapshotDirPruned(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)

	trk := newTestTracker(t, root, nil)
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	if trk.Database().TotalSnapshots() != 3 {
		t.Fatalf("initial generation has %d snapshots, want 3", trk.Database().TotalSnapshots())
	}

	if err := os.RemoveAll(filepath.Join(root, "NSS", "2020-03-01")); err != nil {
		t.Fatal(err)
	}
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	if got := trk.Database().TotalSnapshots(); got != 2 {
		t.Fatalf("after removal generation has %d snapshots, want 2", got)
	}
	if snapshotByVersion(trk.Database(), "NSS", "2020-03-01") != nil {
		t.Fatal("vanished snapshot still served")
	}

	trk.mu.Lock()
	_, stillSeen := trk.seen["NSS/2020-03-01"]
	trk.mu.Unlock()
	if stillSeen {
		t.Fatal("vanished directory's stamp not pruned")
	}

	// Reappearing content is ingested again.
	writeCertdata(t, root, "NSS", "2020-03-01", trusted(t, 1, 2))
	if n, err := trk.Rescan(); err != nil || n != 1 {
		t.Fatalf("reappearance rescan: n=%d err=%v, want 1 nil", n, err)
	}
}

// TestIncrementalReloadKeepsOldGenerationQueryable: the previous database
// must stay fully usable (bitset queries included) while and after the new
// generation is spliced — the hot-swap guarantee the service relies on.
func TestIncrementalReloadKeepsOldGenerationQueryable(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)

	trk := newTestTracker(t, root, nil)
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	gen1 := trk.Database()
	s1 := snapshotByVersion(gen1, "NSS", "2020-01-01")
	before := s1.TrustedBits(store.ServerAuth, nil).Count()

	writePEM(t, root, "Debian", "2020-09-01", trusted(t, 2))
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}

	if after := s1.TrustedBits(store.ServerAuth, nil).Count(); after != before {
		t.Fatalf("old generation's bitset changed across splice: %d → %d", before, after)
	}
	// And the new generation answers over its own interner.
	s2 := snapshotByVersion(trk.Database(), "NSS", "2020-01-01")
	if got := s2.TrustedBits(store.ServerAuth, nil).Count(); got != before {
		t.Fatalf("new generation's bitset count %d, want %d", got, before)
	}
}
