package tracker

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/certdata"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func date(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

// writeCertdata writes an NSS-style snapshot directory.
func writeCertdata(t *testing.T, root, provider, version string, entries []*store.TrustEntry) {
	t.Helper()
	dir := filepath.Join(root, provider, version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "certdata.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := certdata.Marshal(f, entries); err != nil {
		t.Fatal(err)
	}
}

// writePEM writes a flat PEM-bundle snapshot directory.
func writePEM(t *testing.T, root, provider, version string, entries []*store.TrustEntry) {
	t.Helper()
	dir := filepath.Join(root, provider, version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pemstore.WriteBundle(f, entries); err != nil {
		t.Fatal(err)
	}
}

// trusted builds server-auth entries over the shared test roots at the
// given indices.
func trusted(t *testing.T, idx ...int) []*store.TrustEntry {
	t.Helper()
	max := 0
	for _, i := range idx {
		if i >= max {
			max = i + 1
		}
	}
	roots := testcerts.Roots(max)
	out := make([]*store.TrustEntry, 0, len(idx))
	for _, i := range idx {
		e, err := store.NewTrustedEntry(roots[i].DER, store.ServerAuth)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func fpOf(t *testing.T, idx int) string {
	t.Helper()
	return trusted(t, idx)[0].Fingerprint.String()
}

func newTestTracker(t *testing.T, root string, mutate func(*Config)) *Tracker {
	t.Helper()
	cfg := Config{Source: NewDirSource(root, 0)}
	if mutate != nil {
		mutate(&cfg)
	}
	trk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trk
}

// seedTree writes the baseline two-provider history: NSS removes root 0 and
// partially distrusts root 1 in its second release, while Debian still
// carries everything.
func seedTree(t *testing.T, root string) {
	writeCertdata(t, root, "NSS", "2020-01-01", trusted(t, 0, 1, 2))
	second := trusted(t, 1, 2)
	second[0].SetDistrustAfter(store.ServerAuth, date(2020, 6, 1))
	writeCertdata(t, root, "NSS", "2020-03-01", second)
	writePEM(t, root, "Debian", "2020-02-01", trusted(t, 0, 1, 2))
}

func TestInitialRescanReplaysHistory(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)

	var reloads int
	trk := newTestTracker(t, root, func(c *Config) {
		c.OnReload = func(db *store.Database) {
			reloads++
			if db.TotalSnapshots() != 3 {
				t.Errorf("reload db has %d snapshots, want 3", db.TotalSnapshots())
			}
		}
	})
	n, err := trk.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ingested %d snapshots, want 3", n)
	}
	if reloads != 1 {
		t.Fatalf("OnReload called %d times, want 1", reloads)
	}
	if e := trk.Epoch(); e != 1 {
		t.Fatalf("Epoch after initial rescan = %d, want 1", e)
	}

	all := trk.Log().Replay(Filter{})
	// 3 ingest markers + NSS@2020-03-01's removal + distrust-after-set.
	if len(all) != 5 {
		for _, ev := range all {
			t.Log(ev)
		}
		t.Fatalf("events = %d, want 5", len(all))
	}

	removed := trk.Log().Replay(Filter{Type: RootRemoved})
	if len(removed) != 1 {
		t.Fatalf("removals = %d, want 1", len(removed))
	}
	rm := removed[0]
	if rm.Provider != "NSS" || rm.Fingerprint != fpOf(t, 0) {
		t.Errorf("removal = %+v", rm)
	}
	// Debian's store in force on 2020-03-01 still trusts root 0, so the
	// removal is the paper's high-severity case.
	if len(rm.Holders) != 1 || rm.Holders[0] != "Debian" {
		t.Errorf("holders = %v, want [Debian]", rm.Holders)
	}
	if rm.Severity != SeverityHigh {
		t.Errorf("removal severity = %s, want high", rm.Severity)
	}
	if rm.LagDays == nil || *rm.LagDays != 0 || rm.FirstRemover != "NSS" {
		t.Errorf("first removal lag = %v first=%q", rm.LagDays, rm.FirstRemover)
	}

	das := trk.Log().Replay(Filter{Type: DistrustAfterSet})
	if len(das) != 1 {
		t.Fatalf("distrust-after events = %d, want 1", len(das))
	}
	if das[0].Severity != SeverityHigh || das[0].Fingerprint != fpOf(t, 1) {
		t.Errorf("distrust-after event = %+v", das[0])
	}
	if das[0].DistrustAfter == nil || !das[0].DistrustAfter.Equal(date(2020, 6, 1)) {
		t.Errorf("cutoff = %v", das[0].DistrustAfter)
	}

	// Quiescent rescan: no phantom events.
	if n, err := trk.Rescan(); err != nil || n != 0 {
		t.Fatalf("idle rescan = %d, %v", n, err)
	}
	if got := trk.Log().Len(); got != 5 {
		t.Errorf("idle rescan grew the log to %d", got)
	}
}

func TestLiveRemovalLagAndResponsiveness(t *testing.T) {
	root := t.TempDir()
	seedTree(t, root)
	trk := newTestTracker(t, root, nil)
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	seq := trk.Log().LastSeq()

	// Debian catches up 31 days after NSS: drops root 0 too.
	writePEM(t, root, "Debian", "2020-04-01", trusted(t, 1, 2))
	n, err := trk.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ingested %d snapshots, want 1", n)
	}

	fresh := trk.Log().Replay(Filter{SinceSeq: seq})
	var rm *Event
	for i := range fresh {
		if fresh[i].Type == RootRemoved {
			rm = &fresh[i]
		}
	}
	if rm == nil {
		t.Fatalf("no removal event in %d fresh events", len(fresh))
	}
	if rm.Provider != "Debian" || rm.FirstRemover != "NSS" {
		t.Errorf("removal = %+v", rm)
	}
	if rm.LagDays == nil || *rm.LagDays != 31 {
		t.Errorf("lag = %v, want 31 days behind NSS", rm.LagDays)
	}
	// Nobody still holds root 0 on 2020-04-01, so this laggard removal is
	// medium, not high.
	if rm.Severity != SeverityMedium {
		t.Errorf("severity = %s, want medium (no remaining holders)", rm.Severity)
	}

	rows := trk.Responsiveness()
	if len(rows) != 1 {
		t.Fatalf("responsiveness rows = %d, want 1", len(rows))
	}
	row := rows[0]
	if row.FirstProvider != "NSS" || row.LagDays["NSS"] != 0 || row.LagDays["Debian"] != 31 {
		t.Errorf("responsiveness row = %+v", row)
	}

	lag := trk.Lag()
	if len(lag) != 2 || lag["Debian"] <= 0 || lag["NSS"] <= lag["Debian"] {
		t.Errorf("lag gauges = %v (NSS should trail Debian)", lag)
	}
}

func TestModifiedInPlaceSnapshotDiffsAgainstServedState(t *testing.T) {
	root := t.TempDir()
	writePEM(t, root, "Alpine", "2020-01-01", trusted(t, 0, 1))
	trk := newTestTracker(t, root, nil)
	if _, err := trk.Rescan(); err != nil {
		t.Fatal(err)
	}
	seq := trk.Log().LastSeq()

	// Rewrite the same version directory with one root gone — a mutable
	// "latest" tree. Bump mtime well past the recorded stamp.
	writePEM(t, root, "Alpine", "2020-01-01", trusted(t, 1))
	future := time.Now().Add(2 * time.Second)
	bundle := filepath.Join(root, "Alpine", "2020-01-01", "tls-ca-bundle.pem")
	if err := os.Chtimes(bundle, future, future); err != nil {
		t.Fatal(err)
	}

	if n, err := trk.Rescan(); err != nil || n != 1 {
		t.Fatalf("rescan = %d, %v; want 1 modified snapshot", n, err)
	}
	fresh := trk.Log().Replay(Filter{SinceSeq: seq, Type: RootRemoved})
	if len(fresh) != 1 || fresh[0].Fingerprint != fpOf(t, 0) {
		t.Fatalf("in-place edit produced %d removal events: %+v", len(fresh), fresh)
	}
}

func TestDirSourceSettleWindow(t *testing.T) {
	root := t.TempDir()
	writePEM(t, root, "Debian", "2020-01-01", trusted(t, 0))
	src := NewDirSource(root, time.Minute)

	dirs, err := src.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 0 {
		t.Fatalf("fresh directory reported before settle window: %+v", dirs)
	}

	// Pretend a minute passed.
	src.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	dirs, err = src.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0].Key() != "Debian/2020-01-01" {
		t.Fatalf("settled scan = %+v", dirs)
	}
}

func TestTrackerEmptyTreeErrors(t *testing.T) {
	trk := newTestTracker(t, t.TempDir(), nil)
	if _, err := trk.Rescan(); err == nil {
		t.Fatal("empty tree should error (nothing to serve)")
	}
}
