package tracker

import (
	"time"

	"repro/internal/obs"
)

// Stats is a point-in-time snapshot of the tracker's pipeline counters.
type Stats struct {
	// Rescans counts every Rescan call, including no-change polls.
	Rescans uint64 `json:"rescans"`
	// Reloads counts rescans that installed a new database generation.
	Reloads uint64 `json:"reloads"`
	// EventsEmitted counts classified events appended to the log.
	EventsEmitted uint64 `json:"events_emitted"`
	// LastReload is the duration of the most recent reload (zero before
	// the first).
	LastReload time.Duration `json:"last_reload_ns"`
	// ReloadTotal is the cumulative time spent in reloads.
	ReloadTotal time.Duration `json:"reload_total_ns"`
}

// Stats reads the pipeline counters without locking the tracker.
func (t *Tracker) Stats() Stats {
	return Stats{
		Rescans:       t.statRescans.Load(),
		Reloads:       t.statReloads.Load(),
		EventsEmitted: t.statEvents.Load(),
		LastReload:    time.Duration(t.statLastReloadNS.Load()),
		ReloadTotal:   time.Duration(t.statReloadTotalNS.Load()),
	}
}

// StatsFamilies renders the tracker's counters as Prometheus families
// under the given namespace prefix ("trustd_" in the serving layer). This
// is the service package's statsProvider capability: attaching a tracker
// as the event feed automatically adds these families to the scrape.
func (t *Tracker) StatsFamilies(prefix string) []obs.MetricFamily {
	st := t.Stats()
	return []obs.MetricFamily{
		obs.CounterFamily(prefix+"tracker_rescans_total",
			"Source rescans, including polls that found no changes.", float64(st.Rescans)),
		obs.CounterFamily(prefix+"tracker_reloads_total",
			"Rescans that ingested changes and installed a new database.", float64(st.Reloads)),
		obs.CounterFamily(prefix+"tracker_events_emitted_total",
			"Classified change events appended to the event log.", float64(st.EventsEmitted)),
		obs.GaugeFamily(prefix+"tracker_last_reload_seconds",
			"Duration of the most recent reload.", st.LastReload.Seconds()),
		obs.CounterFamily(prefix+"tracker_reload_seconds_total",
			"Cumulative time spent reloading the database.", st.ReloadTotal.Seconds()),
	}
}
