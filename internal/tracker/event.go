// Package tracker is the change-tracking subsystem between ingestion and
// serving: it watches snapshot source trees, ingests new root-store
// releases through internal/catalog, turns store.DiffSnapshots output into
// structured change events with severities modeled on the paper's removal
// triage (Tables 4 and 7), appends them to a replayable JSONL-persisted
// event log, and fans them out to subscribers. cmd/trustd uses it to
// hot-swap the serving database without dropping queries; cmd/rootwatch
// tails it to recompute the paper's removal-responsiveness deltas live
// instead of post-hoc.
package tracker

import (
	"encoding/json"
	"fmt"
	"time"
)

// Type classifies a change event.
type Type string

// Event types. Membership and trust-metadata events are derived from
// store.DiffSnapshots between a snapshot and its predecessor; every new
// snapshot additionally yields one SnapshotIngested marker.
const (
	RootAdded            Type = "root-added"
	RootRemoved          Type = "root-removed"
	TrustChanged         Type = "trust-changed"
	DistrustAfterSet     Type = "distrust-after-set"
	DistrustAfterCleared Type = "distrust-after-cleared"
	SnapshotIngested     Type = "snapshot-ingested"
)

// Severity grades an event, mirroring the paper's removal triage
// (Appendix C / Table 7): high is the Mozilla-urgent class, medium the
// non-urgent program-driven class, and notice/info are operational.
type Severity int

// Severity levels, ordered so comparisons express "at least".
const (
	SeverityInfo Severity = iota
	SeverityNotice
	SeverityMedium
	SeverityHigh
)

var severityNames = [...]string{"info", "notice", "medium", "high"}

// String names the severity.
func (s Severity) String() string {
	if int(s) >= 0 && int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity is the inverse of String.
func ParseSeverity(name string) (Severity, error) {
	for i, n := range severityNames {
		if n == name {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("tracker: unknown severity %q", name)
}

// MarshalJSON renders the severity name, keeping the JSONL log and the API
// payloads readable.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Event is one structured root-store change. Seq is assigned by the event
// log and strictly increases; Date is the snapshot date the change became
// visible (the paper's time axis), ObservedAt the wall-clock ingest time.
type Event struct {
	Seq      uint64   `json:"seq"`
	Type     Type     `json:"type"`
	Severity Severity `json:"severity"`

	Provider string `json:"provider"`
	// Version is the snapshot that introduced the change; PrevVersion the
	// snapshot it was diffed against (empty for a provider's first).
	Version     string    `json:"version"`
	PrevVersion string    `json:"prev_version,omitempty"`
	Date        time.Time `json:"date"`
	ObservedAt  time.Time `json:"observed_at"`

	// Root identity, absent for SnapshotIngested markers.
	Fingerprint string `json:"fingerprint,omitempty"`
	Label       string `json:"label,omitempty"`

	// Trust transition detail for TrustChanged / DistrustAfter* events.
	Purpose       string     `json:"purpose,omitempty"`
	OldLevel      string     `json:"old,omitempty"`
	NewLevel      string     `json:"new,omitempty"`
	DistrustAfter *time.Time `json:"distrust_after,omitempty"`

	// Holders lists the other providers still trusting the root (server
	// auth) at the event date — the cross-store blast radius that drives
	// removal severity.
	Holders []string `json:"holders,omitempty"`

	// Responsiveness: for removals, the lag in days behind the first
	// store that dropped the same root — Table 4's per-store deltas,
	// recomputed live. Zero lag marks the first remover itself.
	LagDays      *int   `json:"lag_days,omitempty"`
	FirstRemover string `json:"first_remover,omitempty"`

	// Detail carries human-readable context (counts, formats).
	Detail string `json:"detail,omitempty"`
}

// String renders the event for terminal tails.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s [%s] %s@%s", e.Seq, e.Date.Format("2006-01-02"), e.Severity, e.Provider, e.Version)
	switch e.Type {
	case SnapshotIngested:
		s += fmt.Sprintf(" %s (%s)", e.Type, e.Detail)
	case TrustChanged:
		s += fmt.Sprintf(" %s %.16s %s %s: %s -> %s", e.Type, e.Fingerprint, e.Label, e.Purpose, e.OldLevel, e.NewLevel)
	case DistrustAfterSet:
		s += fmt.Sprintf(" %s %.16s %s %s after %s", e.Type, e.Fingerprint, e.Label, e.Purpose, e.DistrustAfter.Format("2006-01-02"))
	case DistrustAfterCleared:
		s += fmt.Sprintf(" %s %.16s %s %s", e.Type, e.Fingerprint, e.Label, e.Purpose)
	default:
		s += fmt.Sprintf(" %s %.16s %s", e.Type, e.Fingerprint, e.Label)
	}
	if e.LagDays != nil && e.FirstRemover != "" && *e.LagDays > 0 {
		s += fmt.Sprintf(" (+%dd after %s)", *e.LagDays, e.FirstRemover)
	}
	return s
}
