package tracker

import (
	"sync"
	"testing"
)

func TestBusFanout(t *testing.T) {
	b := NewBus()
	ch1, cancel1 := b.Subscribe(4)
	ch2, cancel2 := b.Subscribe(4)
	defer cancel2()

	b.Publish(Event{Seq: 1, Type: RootRemoved})
	if got := (<-ch1).Seq; got != 1 {
		t.Errorf("sub1 got seq %d", got)
	}
	if got := (<-ch2).Seq; got != 1 {
		t.Errorf("sub2 got seq %d", got)
	}

	cancel1()
	cancel1() // idempotent
	if _, open := <-ch1; open {
		t.Error("cancelled channel still open")
	}
	b.Publish(Event{Seq: 2})
	if got := (<-ch2).Seq; got != 2 {
		t.Errorf("surviving sub got seq %d", got)
	}
	if b.Subscribers() != 1 {
		t.Errorf("subscribers = %d, want 1", b.Subscribers())
	}
}

func TestBusDropsWhenFull(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1)
	defer cancel()
	b.Publish(Event{Seq: 1})
	b.Publish(Event{Seq: 2}) // buffer full: dropped
	if got := (<-ch).Seq; got != 1 {
		t.Errorf("got seq %d, want 1", got)
	}
	if b.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", b.Dropped())
	}
}

// TestBusConcurrentPublishSubscribe is a -race exercise: publishers,
// subscribers and cancellations interleaving freely.
func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Publish(Event{Seq: uint64(i)})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ch, cancel := b.Subscribe(2)
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	if b.Subscribers() != 0 {
		t.Errorf("leaked %d subscribers", b.Subscribers())
	}
}
