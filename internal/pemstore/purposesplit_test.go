package pemstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/testcerts"
)

func TestPurposeBundlesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	roots := testcerts.Roots(4)
	tlsOnly, _ := store.NewTrustedEntry(roots[0].DER, store.ServerAuth)
	emailOnly, _ := store.NewTrustedEntry(roots[1].DER, store.EmailProtection)
	both, _ := store.NewTrustedEntry(roots[2].DER, store.ServerAuth, store.EmailProtection)
	code, _ := store.NewTrustedEntry(roots[3].DER, store.CodeSigning)
	in := []*store.TrustEntry{tlsOnly, emailOnly, both, code}

	if err := WritePurposeBundles(dir, in); err != nil {
		t.Fatalf("WritePurposeBundles: %v", err)
	}
	for _, name := range []string{"tls-ca-bundle.pem", "email-ca-bundle.pem", "objsign-ca-bundle.pem"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("bundle %s missing: %v", name, err)
		}
	}

	out, err := ReadPurposeBundles(dir)
	if err != nil {
		t.Fatalf("ReadPurposeBundles: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("entries = %d, want 4", len(out))
	}
	byFP := map[string]*store.TrustEntry{}
	for _, e := range out {
		byFP[e.Fingerprint.String()] = e
	}
	check := func(src *store.TrustEntry, wantTLS, wantEmail, wantCode bool) {
		t.Helper()
		e := byFP[src.Fingerprint.String()]
		if e == nil {
			t.Fatalf("entry %s missing", src.Fingerprint.Short())
		}
		if e.TrustedFor(store.ServerAuth) != wantTLS {
			t.Errorf("%s TLS trust = %v", src.Fingerprint.Short(), e.TrustedFor(store.ServerAuth))
		}
		if e.TrustedFor(store.EmailProtection) != wantEmail {
			t.Errorf("%s email trust = %v", src.Fingerprint.Short(), e.TrustedFor(store.EmailProtection))
		}
		if e.TrustedFor(store.CodeSigning) != wantCode {
			t.Errorf("%s code trust = %v", src.Fingerprint.Short(), e.TrustedFor(store.CodeSigning))
		}
	}
	// The split layout preserves purposes a combined bundle would conflate.
	check(tlsOnly, true, false, false)
	check(emailOnly, false, true, false)
	check(both, true, true, false)
	check(code, false, false, true)
}

func TestReadPurposeBundlesPartialLayout(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(2, store.ServerAuth)
	// Only the TLS bundle exists.
	f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBundle(f, in, store.ServerAuth); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := ReadPurposeBundles(dir)
	if err != nil {
		t.Fatalf("partial layout should read: %v", err)
	}
	if len(out) != 2 {
		t.Errorf("entries = %d", len(out))
	}
}

func TestReadPurposeBundlesEmptyDir(t *testing.T) {
	out, err := ReadPurposeBundles(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("entries = %d", len(out))
	}
}

func TestReadPurposeBundlesCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tls-ca-bundle.pem"),
		[]byte("-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPurposeBundles(dir); err == nil {
		t.Error("corrupt bundle should error")
	}
}
