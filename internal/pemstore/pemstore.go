// Package pemstore reads and writes Linux-style root stores: flat PEM
// bundles (/etc/ssl/cert.pem, tls-ca-bundle.pem) and directories of
// individual certificate files (/usr/share/ca-certificates).
//
// This format is the crux of the paper's §6: it can only express on-or-off
// trust. Parsing therefore marks every certificate Trusted for the purposes
// the caller says the bundle covers, and writing drops trust levels,
// partial-distrust dates, and non-covered purposes — the exact fidelity
// loss that produced the Symantec re-trust incidents.
package pemstore

import (
	"bytes"
	"encoding/pem"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/store"
)

// CertificateBlock is the PEM type for certificates.
const CertificateBlock = "CERTIFICATE"

// ParseBundle reads a concatenated PEM bundle. Every certificate becomes an
// entry trusted for the listed purposes (callers pass just ServerAuth for a
// purpose-split tls-ca-bundle.pem, or the multi-purpose set for a classic
// combined bundle).
func ParseBundle(r io.Reader, purposes ...store.Purpose) ([]*store.TrustEntry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("pemstore: read bundle: %w", err)
	}
	var entries []*store.TrustEntry
	for len(data) > 0 {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			rest := bytes.TrimSpace(data)
			if len(rest) != 0 {
				return nil, fmt.Errorf("pemstore: trailing garbage after PEM blocks (%d bytes)", len(rest))
			}
			break
		}
		if block.Type != CertificateBlock {
			continue // bundles occasionally carry unrelated blocks; skip
		}
		e, err := store.NewTrustedEntry(block.Bytes, purposes...)
		if err != nil {
			return nil, fmt.Errorf("pemstore: certificate %d: %w", len(entries), err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteBundle writes entries trusted for filter (if filter is non-empty,
// only entries trusted for at least one filter purpose are written) as a
// concatenated PEM bundle. Trust metadata is irrecoverably dropped; that is
// the format's defining limitation.
func WriteBundle(w io.Writer, entries []*store.TrustEntry, filter ...store.Purpose) error {
	for _, e := range entries {
		if !matchesFilter(e, filter) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# %s\n", e.Label); err != nil {
			return err
		}
		if err := pem.Encode(w, &pem.Block{Type: CertificateBlock, Bytes: e.DER}); err != nil {
			return fmt.Errorf("pemstore: encode %q: %w", e.Label, err)
		}
	}
	return nil
}

func matchesFilter(e *store.TrustEntry, filter []store.Purpose) bool {
	if len(filter) == 0 {
		return true
	}
	for _, p := range filter {
		if e.TrustedFor(p) {
			return true
		}
	}
	return false
}

// BundleBytes is WriteBundle into a byte slice.
func BundleBytes(entries []*store.TrustEntry, filter ...store.Purpose) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, entries, filter...); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadDir reads a directory of individual .crt/.pem certificate files, the
// /usr/share/ca-certificates layout. File names become entry labels.
func ReadDir(dir string, purposes ...store.Purpose) ([]*store.TrustEntry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pemstore: %w", err)
	}
	var names []string
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(de.Name())) {
		case ".crt", ".pem", ".cer":
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	var entries []*store.TrustEntry
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("pemstore: %w", err)
		}
		es, err := ParseBundle(f, purposes...)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("pemstore: %s: %w", name, err)
		}
		for _, e := range es {
			e.Label = strings.TrimSuffix(name, filepath.Ext(name))
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// WriteDir writes each entry as an individual PEM file named after its
// label (sanitized) in dir, creating dir if needed.
func WriteDir(dir string, entries []*store.TrustEntry, filter ...store.Purpose) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pemstore: %w", err)
	}
	seen := make(map[string]int)
	for _, e := range entries {
		if !matchesFilter(e, filter) {
			continue
		}
		name := sanitizeName(e.Label)
		if n := seen[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n)
		}
		seen[sanitizeName(e.Label)]++
		path := filepath.Join(dir, name+".crt")
		var buf bytes.Buffer
		if err := pem.Encode(&buf, &pem.Block{Type: CertificateBlock, Bytes: e.DER}); err != nil {
			return err
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("pemstore: %w", err)
		}
	}
	return nil
}

func sanitizeName(label string) string {
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "certificate"
	}
	return b.String()
}
