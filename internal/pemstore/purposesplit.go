package pemstore

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/store"
)

// Purpose-split bundle file names, following the RHEL/AmazonLinux
// extracted-bundle convention the paper's §7 recommends as the short-term
// fix for multi-purpose root stores.
var purposeBundleNames = map[store.Purpose]string{
	store.ServerAuth:      "tls-ca-bundle.pem",
	store.EmailProtection: "email-ca-bundle.pem",
	store.CodeSigning:     "objsign-ca-bundle.pem",
}

// WritePurposeBundles writes one single-purpose PEM bundle per purpose into
// dir (tls-ca-bundle.pem, email-ca-bundle.pem, objsign-ca-bundle.pem),
// each containing only the entries trusted for that purpose.
func WritePurposeBundles(dir string, entries []*store.TrustEntry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pemstore: %w", err)
	}
	for p, name := range purposeBundleNames {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("pemstore: %w", err)
		}
		err = WriteBundle(f, entries, p)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("pemstore: write %s: %w", name, err)
		}
	}
	return nil
}

// ReadPurposeBundles reads a purpose-split directory back into entries with
// per-purpose trust reconstructed — unlike a combined bundle, the split
// layout preserves which purpose each root was trusted for.
func ReadPurposeBundles(dir string) ([]*store.TrustEntry, error) {
	merged := map[string]*store.TrustEntry{}
	var order []string
	for p, name := range purposeBundleNames {
		f, err := os.Open(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("pemstore: %w", err)
		}
		es, perr := ParseBundle(f, p)
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("pemstore: %s: %w", name, perr)
		}
		for _, e := range es {
			key := e.Fingerprint.String()
			if prev, ok := merged[key]; ok {
				prev.SetTrust(p, store.Trusted)
				continue
			}
			merged[key] = e
			order = append(order, key)
		}
	}
	out := make([]*store.TrustEntry, 0, len(order))
	for _, key := range order {
		out = append(out, merged[key])
	}
	return out, nil
}
