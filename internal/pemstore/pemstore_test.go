package pemstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/testcerts"
)

func TestBundleRoundTrip(t *testing.T) {
	in := testcerts.Entries(4, store.ServerAuth)
	data, err := BundleBytes(in)
	if err != nil {
		t.Fatalf("BundleBytes: %v", err)
	}
	out, err := ParseBundle(bytes.NewReader(data), store.ServerAuth)
	if err != nil {
		t.Fatalf("ParseBundle: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("entries = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Fingerprint != in[i].Fingerprint {
			t.Errorf("entry %d fingerprint mismatch", i)
		}
		if !out[i].TrustedFor(store.ServerAuth) {
			t.Errorf("entry %d lost trust", i)
		}
	}
}

func TestBundleDropsTrustMetadata(t *testing.T) {
	// The format's defining limitation: partial distrust cannot survive a
	// PEM round trip (the Symantec problem from §6.2).
	in := testcerts.Entries(1, store.ServerAuth)
	in[0].SetDistrustAfter(store.ServerAuth, mustDate(t, "2020-09-01"))
	data, err := BundleBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseBundle(bytes.NewReader(data), store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out[0].DistrustAfterFor(store.ServerAuth); ok {
		t.Error("distrust-after impossibly survived a PEM round trip")
	}
}

func TestWriteBundleFilter(t *testing.T) {
	entries := testcerts.Entries(2, store.ServerAuth)
	emailOnly := testcerts.Entries(3, store.EmailProtection)[2]
	entries = append(entries, emailOnly)

	data, err := BundleBytes(entries, store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseBundle(bytes.NewReader(data), store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("filtered bundle has %d entries, want 2", len(out))
	}
	// No filter writes everything.
	all, err := BundleBytes(entries)
	if err != nil {
		t.Fatal(err)
	}
	outAll, err := ParseBundle(bytes.NewReader(all), store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	if len(outAll) != 3 {
		t.Errorf("unfiltered bundle has %d entries, want 3", len(outAll))
	}
}

func TestParseBundleSkipsForeignBlocks(t *testing.T) {
	in := testcerts.Entries(1, store.ServerAuth)
	data, err := BundleBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	doc := "-----BEGIN PUBLIC KEY-----\nAAAA\n-----END PUBLIC KEY-----\n" + string(data)
	out, err := ParseBundle(strings.NewReader(doc), store.ServerAuth)
	if err != nil {
		t.Fatalf("ParseBundle: %v", err)
	}
	if len(out) != 1 {
		t.Errorf("entries = %d, want 1", len(out))
	}
}

func TestParseBundleTrailingGarbage(t *testing.T) {
	in := testcerts.Entries(1, store.ServerAuth)
	data, err := BundleBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data) + "\nthis is not pem\n"
	if _, err := ParseBundle(strings.NewReader(doc), store.ServerAuth); err == nil {
		t.Error("trailing garbage should be rejected")
	}
}

func TestParseBundleCorruptCertificate(t *testing.T) {
	doc := "-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n"
	if _, err := ParseBundle(strings.NewReader(doc), store.ServerAuth); err == nil {
		t.Error("corrupt certificate should be rejected")
	}
}

func TestParseBundleEmpty(t *testing.T) {
	out, err := ParseBundle(strings.NewReader(""), store.ServerAuth)
	if err != nil {
		t.Fatalf("empty bundle: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("entries = %d", len(out))
	}
}

func TestDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(3, store.ServerAuth)
	if err := WriteDir(dir, in); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	out, err := ReadDir(dir, store.ServerAuth)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("entries = %d, want 3", len(out))
	}
	inFPs := map[string]bool{}
	for _, e := range in {
		inFPs[e.Fingerprint.String()] = true
	}
	for _, e := range out {
		if !inFPs[e.Fingerprint.String()] {
			t.Errorf("unexpected entry %s", e.Fingerprint.Short())
		}
	}
}

func TestWriteDirDuplicateLabels(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(2, store.ServerAuth)
	in[0].Label = "Same Name"
	in[1].Label = "Same Name"
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 2 {
		t.Errorf("files = %d, want 2 (duplicate labels must not clobber)", len(des))
	}
}

func TestReadDirIgnoresOtherFiles(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(1, store.ServerAuth)
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDir(dir, store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("entries = %d, want 1", len(out))
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir("/nonexistent/certainly/missing", store.ServerAuth); err == nil {
		t.Error("missing directory should error")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"GlobalSign Root CA":  "GlobalSign_Root_CA",
		"weird/path\\name":    "weird_path_name",
		"":                    "certificate",
		"dots.and-dashes_ok1": "dots.and-dashes_ok1",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func mustDate(t *testing.T, s string) time.Time {
	t.Helper()
	d, err := time.Parse("2006-01-02", s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
