package useragent

import (
	"math"
	"testing"
)

func TestPaperWeights(t *testing.T) {
	w := PaperWeights()
	if w.Total != 200 {
		t.Fatalf("total = %d, want 200", w.Total)
	}
	// The paper's headline: 154/200 (77%) traceable.
	if got := w.Total - w.Untraceable; got != 154 {
		t.Errorf("traceable = %d, want 154", got)
	}
	if math.Abs(w.TraceableShare()-0.77) > 1e-9 {
		t.Errorf("traceable share = %v, want 0.77", w.TraceableShare())
	}

	// Hand-computed marginals from Table 1 through the mapping rules.
	want := map[Provider]int{
		ProviderNSS:       11, // Firefox: 7 Win + 2 macOS + 1 Linux + 1 mobile
		ProviderMicrosoft: 34, // Chrome Win 23 + Edge 4 + IE 3 + Opera Win 4
		ProviderApple:     53, // iOS 24 + Safari macOS 15 + Chrome macOS 14
		ProviderAndroid:   49, // Chrome Mobile 48 + desktop-mode Chrome 1
		ProviderNodeJS:    7,  // Electron 6 Win + 1 macOS
	}
	for p, n := range want {
		if w.Providers[p] != n {
			t.Errorf("weight[%s] = %d, want %d", p, w.Providers[p], n)
		}
	}
	sum := 0
	for _, n := range w.Providers {
		sum += n
	}
	if sum+w.Untraceable != w.Total {
		t.Errorf("provider counts (%d) + untraceable (%d) != total (%d)", sum, w.Untraceable, w.Total)
	}
}

func TestWeightsShares(t *testing.T) {
	w := PaperWeights()
	if got := w.Share(ProviderAndroid); math.Abs(got-49.0/200) > 1e-12 {
		t.Errorf("Android share = %v, want %v", got, 49.0/200)
	}
	if got := w.Share(ProviderJava); got != 0 {
		t.Errorf("Java share = %v, want 0 (never traceable in Table 1)", got)
	}
	var zero Weights
	if zero.Share(ProviderNSS) != 0 || zero.TraceableShare() != 0 || zero.UntraceableShare() != 0 {
		t.Error("zero-population weights must report zero shares")
	}
}
