package useragent

// Provider names the root-store provider a client draws trust anchors
// from. Values match internal/store provider names.
type Provider string

// Providers in the paper's dataset, plus sentinels for untraceable agents.
const (
	ProviderNSS       Provider = "NSS"
	ProviderMicrosoft Provider = "Microsoft"
	ProviderApple     Provider = "Apple"
	ProviderAndroid   Provider = "Android"
	ProviderNodeJS    Provider = "NodeJS"
	ProviderJava      Provider = "Java"
	ProviderLinux     Provider = "Linux" // some Linux distribution's store
	ProviderUnknown   Provider = ""      // could not be determined
)

// Family is the independent root program a provider ultimately derives its
// roots from — the paper's four-cluster finding (Figure 1).
type Family string

// The four independent root programs.
const (
	FamilyNSS       Family = "Mozilla"
	FamilyMicrosoft Family = "Microsoft"
	FamilyApple     Family = "Apple"
	FamilyJava      Family = "Java"
	FamilyUnknown   Family = ""
)

// FamilyOf rolls a provider up to its root program. Linux distributions,
// Android and NodeJS all derive from NSS (§6); the paper found no
// exceptions.
func FamilyOf(p Provider) Family {
	switch p {
	case ProviderNSS, ProviderAndroid, ProviderNodeJS, ProviderLinux:
		return FamilyNSS
	case ProviderMicrosoft:
		return FamilyMicrosoft
	case ProviderApple:
		return FamilyApple
	case ProviderJava:
		return FamilyJava
	default:
		return FamilyUnknown
	}
}

// MapResult explains a provider determination.
type MapResult struct {
	Provider Provider
	// Traceable is false when the paper could not (and we cannot)
	// determine the store: unknown clients, proprietary browsers without
	// source history, API clients with build-time configuration.
	Traceable bool
	// Reason is a human-readable justification, mirroring Table 1 and
	// Table 5's "Details" columns.
	Reason string
}

// MapToProvider applies the paper's client→root-store rules (§3, Appendix
// A) to a parsed agent.
func MapToProvider(a Agent) MapResult {
	switch a.Browser {
	case BrowserFirefox, BrowserFirefoxMobile:
		// Firefox ships NSS everywhere.
		return MapResult{ProviderNSS, true, "Firefox uses NSS on all platforms"}
	case BrowserFirefoxIOS, BrowserChromeIOS, BrowserMobileSafari, BrowserWKWebView:
		// Apple prohibits custom root stores on iOS.
		return MapResult{ProviderApple, true, "iOS clients must use the Apple store"}
	case BrowserSafari:
		if a.OS != OSMacOS {
			// "Safari" on Linux/other is a spoofed or embedded agent; the
			// paper could not trace it (Table 1 lists it as not included).
			return MapResult{ProviderUnknown, false, "Safari UA on non-Apple platform is untraceable"}
		}
		return MapResult{ProviderApple, true, "Safari uses the macOS keychain"}
	case BrowserAppleMail:
		// Listed "no" in Table 1: Mail is excluded from the UA analysis.
		return MapResult{ProviderApple, false, "Apple Mail excluded from sample"}
	case BrowserIE, BrowserEdge:
		return MapResult{ProviderMicrosoft, true, "IE/Edge use Windows system certificates"}
	case BrowserElectron:
		// Electron bundles NodeJS, whose root store its net stack uses by
		// default; the paper includes Electron (Table 1 "yes") through
		// that NodeJS lineage, which is what makes the NSS family share
		// come out at 34%.
		return MapResult{ProviderNodeJS, true, "Electron ships the NodeJS root store"}
	case BrowserOpera:
		// Post-2013 Opera is Chromium: system roots.
		switch a.OS {
		case OSWindows:
			return MapResult{ProviderMicrosoft, true, "Opera (Chromium) uses system store"}
		case OSMacOS:
			return MapResult{ProviderApple, true, "Opera (Chromium) uses system store"}
		default:
			return MapResult{ProviderUnknown, false, "Opera on untracked platform"}
		}
	case BrowserChrome, BrowserChromeMobile:
		// Chrome inherited the OS store during the study window.
		switch a.OS {
		case OSWindows:
			return MapResult{ProviderMicrosoft, true, "Chrome uses Windows system store"}
		case OSMacOS:
			return MapResult{ProviderApple, true, "Chrome uses macOS system store"}
		case OSAndroid:
			return MapResult{ProviderAndroid, true, "Chrome uses the Android system store"}
		case OSChromeOS:
			return MapResult{ProviderUnknown, false, "ChromeOS has no public root store history"}
		case OSLinux:
			return MapResult{ProviderUnknown, false, "Linux distribution store unidentifiable from UA"}
		default:
			return MapResult{ProviderUnknown, false, "Chrome on unknown platform"}
		}
	case BrowserChromeWebView:
		return MapResult{ProviderUnknown, false, "WebView apps may customize trust"}
	case BrowserSamsung, BrowserYandex:
		return MapResult{ProviderUnknown, false, "no public source history"}
	case BrowserAndroidBrowser:
		return MapResult{ProviderUnknown, false, "legacy Android browser excluded"}
	case BrowserGoogleApp:
		return MapResult{ProviderUnknown, false, "Google app excluded"}
	case BrowserOkhttp:
		return MapResult{ProviderUnknown, false, "okhttp uses platform TLS; app unidentifiable"}
	case BrowserCryptoAPI:
		return MapResult{ProviderUnknown, false, "CryptoAPI updater, not a TLS user agent"}
	case BrowserAPIClient:
		return MapResult{ProviderUnknown, false, "API client with build-time trust configuration"}
	default:
		return MapResult{ProviderUnknown, false, "unrecognized user agent"}
	}
}
