// Package useragent parses HTTP User-Agent strings into (client, OS) pairs
// and maps them to the root-store provider the client actually uses — the
// paper's methodology for Table 1 and the ecosystem pyramid of Figure 2.
// It also contains a weighted traffic generator calibrated to the paper's
// published top-200 CDN sample, substituting for the proprietary CDN data.
package useragent

import (
	"strings"
)

// Browser identifies the client software family.
type Browser string

// Client families found in the paper's top-200 sample.
const (
	BrowserChrome         Browser = "Chrome"
	BrowserChromeMobile   Browser = "Chrome Mobile"
	BrowserChromeWebView  Browser = "Chrome Mobile WebView"
	BrowserChromeIOS      Browser = "Chrome Mobile iOS"
	BrowserFirefox        Browser = "Firefox"
	BrowserFirefoxMobile  Browser = "Firefox Mobile"
	BrowserFirefoxIOS     Browser = "Firefox iOS"
	BrowserSafari         Browser = "Safari"
	BrowserMobileSafari   Browser = "Mobile Safari"
	BrowserWKWebView      Browser = "WKWebView"
	BrowserEdge           Browser = "Edge"
	BrowserIE             Browser = "IE"
	BrowserOpera          Browser = "Opera"
	BrowserYandex         Browser = "Yandex Browser"
	BrowserSamsung        Browser = "Samsung Internet"
	BrowserAndroidBrowser Browser = "Android"
	BrowserElectron       Browser = "Electron"
	BrowserOkhttp         Browser = "okhttp"
	BrowserCryptoAPI      Browser = "CryptoAPI"
	BrowserGoogleApp      Browser = "Google"
	BrowserAppleMail      Browser = "Apple Mail"
	BrowserAPIClient      Browser = "API Client"
	BrowserUnknown        Browser = "Unknown"
)

// OS identifies the operating system family.
type OS string

// Operating systems found in the sample.
const (
	OSWindows  OS = "Windows"
	OSMacOS    OS = "Mac OS X"
	OSIOS      OS = "iOS"
	OSAndroid  OS = "Android"
	OSLinux    OS = "Linux"
	OSChromeOS OS = "ChromeOS"
	OSUnknown  OS = "Unknown"
)

// Agent is a parsed User-Agent.
type Agent struct {
	Browser Browser
	OS      OS
	// Version is the client's major version string when present.
	Version string
	// Raw preserves the input.
	Raw string
}

// Parse classifies a User-Agent string. The precedence order matters:
// almost every Chromium derivative embeds "Chrome/", and everything under
// the sun claims "Mozilla/5.0", so specific markers are tested before
// generic ones — the same care the paper's manual investigation applied.
func Parse(ua string) Agent {
	a := Agent{Raw: ua, Browser: BrowserUnknown, OS: OSUnknown}
	a.OS = parseOS(ua)

	switch {
	case ua == "":
		a.Browser = BrowserUnknown
	case strings.HasPrefix(ua, "okhttp/"):
		a.Browser = BrowserOkhttp
		a.Version = versionAfter(ua, "okhttp/")
	case strings.Contains(ua, "Microsoft-CryptoAPI"):
		a.Browser = BrowserCryptoAPI
		a.Version = versionAfter(ua, "Microsoft-CryptoAPI/")
	case isAPIClient(ua):
		a.Browser = BrowserAPIClient
	case strings.Contains(ua, "Electron/"):
		a.Browser = BrowserElectron
		a.Version = versionAfter(ua, "Electron/")
	case strings.Contains(ua, "YaBrowser/"):
		a.Browser = BrowserYandex
		a.Version = versionAfter(ua, "YaBrowser/")
	case strings.Contains(ua, "SamsungBrowser/"):
		a.Browser = BrowserSamsung
		a.Version = versionAfter(ua, "SamsungBrowser/")
	case strings.Contains(ua, "Edg/") || strings.Contains(ua, "Edge/") || strings.Contains(ua, "EdgA/"):
		a.Browser = BrowserEdge
		for _, marker := range []string{"Edg/", "Edge/", "EdgA/"} {
			if strings.Contains(ua, marker) {
				a.Version = versionAfter(ua, marker)
				break
			}
		}
	case strings.Contains(ua, "OPR/") || strings.Contains(ua, "Opera/"):
		a.Browser = BrowserOpera
		if strings.Contains(ua, "OPR/") {
			a.Version = versionAfter(ua, "OPR/")
		} else {
			a.Version = versionAfter(ua, "Opera/")
		}
	case strings.Contains(ua, "CriOS/"):
		a.Browser = BrowserChromeIOS
		a.Version = versionAfter(ua, "CriOS/")
	case strings.Contains(ua, "FxiOS/"):
		a.Browser = BrowserFirefoxIOS
		a.Version = versionAfter(ua, "FxiOS/")
	case strings.Contains(ua, "GSA/"):
		a.Browser = BrowserGoogleApp
		a.Version = versionAfter(ua, "GSA/")
	case strings.Contains(ua, "Firefox/"):
		if a.OS == OSAndroid {
			a.Browser = BrowserFirefoxMobile
		} else {
			a.Browser = BrowserFirefox
		}
		a.Version = versionAfter(ua, "Firefox/")
	case strings.Contains(ua, "MSIE ") || strings.Contains(ua, "Trident/"):
		a.Browser = BrowserIE
		if strings.Contains(ua, "MSIE ") {
			a.Version = versionAfter(ua, "MSIE ")
		}
	case strings.Contains(ua, "Chrome/"):
		a.Version = versionAfter(ua, "Chrome/")
		switch {
		case a.OS == OSAndroid && strings.Contains(ua, "; wv)"):
			a.Browser = BrowserChromeWebView
		case a.OS == OSAndroid && strings.Contains(ua, "Mobile"):
			a.Browser = BrowserChromeMobile
		default:
			a.Browser = BrowserChrome
		}
	case strings.Contains(ua, "Mobile/") && strings.Contains(ua, "AppleWebKit/") && !strings.Contains(ua, "Safari/"):
		// WebKit without the Safari token: an embedded WKWebView.
		a.Browser = BrowserWKWebView
	case strings.Contains(ua, "Safari/") && strings.Contains(ua, "Version/"):
		switch a.OS {
		case OSIOS:
			a.Browser = BrowserMobileSafari
		case OSAndroid:
			// The legacy Android stock browser carries WebKit's
			// Version/Safari tokens but is not Safari.
			a.Browser = BrowserAndroidBrowser
		default:
			a.Browser = BrowserSafari
		}
		a.Version = versionAfter(ua, "Version/")
	case strings.Contains(ua, "Android") && strings.Contains(ua, "AppleWebKit/"):
		a.Browser = BrowserAndroidBrowser
	case strings.Contains(ua, "Mail/") && a.OS == OSMacOS:
		a.Browser = BrowserAppleMail
	}
	return a
}

func parseOS(ua string) OS {
	switch {
	case strings.Contains(ua, "Windows NT") || strings.Contains(ua, "Windows;") || strings.HasPrefix(ua, "Microsoft"):
		return OSWindows
	case strings.Contains(ua, "CrOS"):
		return OSChromeOS
	case strings.Contains(ua, "Android"):
		return OSAndroid
	case strings.Contains(ua, "iPhone") || strings.Contains(ua, "iPad") || strings.Contains(ua, "iPod") || strings.Contains(ua, "like Mac OS X"):
		return OSIOS
	case strings.Contains(ua, "Mac OS X") || strings.Contains(ua, "Macintosh"):
		return OSMacOS
	case strings.Contains(ua, "Linux") || strings.Contains(ua, "X11;"):
		return OSLinux
	default:
		return OSUnknown
	}
}

// isAPIClient recognizes the non-browser HTTP clients common in CDN logs.
func isAPIClient(ua string) bool {
	prefixes := []string{
		"curl/", "Wget/", "python-requests/", "Python-urllib/", "Go-http-client/",
		"Java/", "Apache-HttpClient/", "axios/", "node-fetch/", "aws-sdk-",
		"Dalvik/", "libwww-perl/", "Ruby", "PostmanRuntime/", "insomnia/",
		"GuzzleHttp/",
	}
	for _, p := range prefixes {
		if strings.HasPrefix(ua, p) {
			return true
		}
	}
	return false
}

// versionAfter extracts the dotted-numeric token following a marker and
// returns its major component.
func versionAfter(ua, marker string) string {
	i := strings.Index(ua, marker)
	if i < 0 {
		return ""
	}
	rest := ua[i+len(marker):]
	end := 0
	for end < len(rest) {
		c := rest[end]
		if (c < '0' || c > '9') && c != '.' {
			break
		}
		end++
	}
	token := rest[:end]
	if dot := strings.IndexByte(token, '.'); dot >= 0 {
		return token[:dot]
	}
	return token
}
