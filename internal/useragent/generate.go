package useragent

import (
	"fmt"
)

// SampleRow is one row of the paper's Table 1: a (OS, client) pair with the
// number of distinct versions observed among the top-200 UAs and whether
// the paper collected the root store behind it.
type SampleRow struct {
	OS       OS
	Browser  Browser
	Versions int
	Included bool
}

// PaperSample returns the paper's Table 1 verbatim: the top-200 User-Agent
// population of a major CDN (April 7, 2021), grouped by OS and client.
// The rows sum to 200 with 154 (77.0%) included.
func PaperSample() []SampleRow {
	return []SampleRow{
		// Android
		{OSAndroid, BrowserChromeMobile, 48, true},
		{OSAndroid, BrowserSamsung, 2, false},
		{OSAndroid, BrowserAndroidBrowser, 3, false},
		{OSAndroid, BrowserFirefoxMobile, 1, true},
		{OSAndroid, BrowserChromeWebView, 1, false},
		{OSAndroid, BrowserChrome, 1, true},
		// Windows
		{OSWindows, BrowserChrome, 23, true},
		{OSWindows, BrowserFirefox, 7, true},
		{OSWindows, BrowserElectron, 6, true},
		{OSWindows, BrowserOpera, 4, true},
		{OSWindows, BrowserEdge, 4, true},
		{OSWindows, BrowserYandex, 3, false},
		{OSWindows, BrowserIE, 3, true},
		// iOS
		{OSIOS, BrowserMobileSafari, 18, true},
		{OSIOS, BrowserWKWebView, 4, true},
		{OSIOS, BrowserChromeIOS, 2, true},
		{OSIOS, BrowserGoogleApp, 2, false},
		// macOS
		{OSMacOS, BrowserSafari, 15, true},
		{OSMacOS, BrowserChrome, 14, true},
		{OSMacOS, BrowserFirefox, 2, true},
		{OSMacOS, BrowserAppleMail, 1, false},
		{OSMacOS, BrowserElectron, 1, true},
		// ChromeOS
		{OSChromeOS, BrowserChrome, 8, false},
		// Linux
		{OSLinux, BrowserChrome, 2, false},
		{OSLinux, BrowserSafari, 1, false},
		{OSLinux, BrowserFirefox, 1, true},
		{OSLinux, BrowserSamsung, 1, false},
		// Unknown platform
		{OSUnknown, BrowserOkhttp, 3, false},
		{OSUnknown, BrowserUnknown, 2, false},
		{OSWindows, BrowserCryptoAPI, 1, false},
		// API clients
		{OSUnknown, BrowserAPIClient, 16, false},
	}
}

// Generate expands the sample rows into concrete User-Agent strings, one
// per (row, version) pair — a synthetic top-200 list whose marginals match
// the paper's. Version numbers are deterministic.
func Generate(rows []SampleRow) []string {
	var out []string
	for _, row := range rows {
		for v := 0; v < row.Versions; v++ {
			out = append(out, uaString(row, v))
		}
	}
	return out
}

// uaString renders a realistic UA string for the row's client/OS at a
// synthetic version index.
func uaString(row SampleRow, v int) string {
	chromeVer := fmt.Sprintf("%d.0.%d.%d", 60+v, 3000+v*7, 80+v)
	switch row.Browser {
	case BrowserChromeMobile:
		return fmt.Sprintf("Mozilla/5.0 (Linux; Android 11; Pixel %d) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Mobile Safari/537.36", 3+v%5, chromeVer)
	case BrowserChromeWebView:
		return fmt.Sprintf("Mozilla/5.0 (Linux; Android 10; SM-G97%d; wv) AppleWebKit/537.36 (KHTML, like Gecko) Version/4.0 Chrome/%s Mobile Safari/537.36", v%10, chromeVer)
	case BrowserChrome:
		switch row.OS {
		case OSWindows:
			return fmt.Sprintf("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36", chromeVer)
		case OSMacOS:
			return fmt.Sprintf("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_%d) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36", v%8, chromeVer)
		case OSChromeOS:
			return fmt.Sprintf("Mozilla/5.0 (X11; CrOS x86_64 1385%d.0.0) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36", v, chromeVer)
		case OSLinux:
			return fmt.Sprintf("Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36", chromeVer)
		case OSAndroid:
			// Desktop-mode Chrome on Android (no Mobile token).
			return fmt.Sprintf("Mozilla/5.0 (Linux; Android 11) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36", chromeVer)
		}
	case BrowserChromeIOS:
		return fmt.Sprintf("Mozilla/5.0 (iPhone; CPU iPhone OS 14_%d like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) CriOS/%d.0.4389.%d Mobile/15E148 Safari/604.1", v%7, 85+v, 70+v)
	case BrowserFirefox:
		switch row.OS {
		case OSWindows:
			return fmt.Sprintf("Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:%d.0) Gecko/20100101 Firefox/%d.0", 78+v, 78+v)
		case OSMacOS:
			return fmt.Sprintf("Mozilla/5.0 (Macintosh; Intel Mac OS X 10.15; rv:%d.0) Gecko/20100101 Firefox/%d.0", 80+v, 80+v)
		case OSLinux:
			return fmt.Sprintf("Mozilla/5.0 (X11; Linux x86_64; rv:%d.0) Gecko/20100101 Firefox/%d.0", 78+v, 78+v)
		}
	case BrowserFirefoxMobile:
		return fmt.Sprintf("Mozilla/5.0 (Android 11; Mobile; rv:%d.0) Gecko/%d.0 Firefox/%d.0", 86+v, 86+v, 86+v)
	case BrowserMobileSafari:
		return fmt.Sprintf("Mozilla/5.0 (iPhone; CPU iPhone OS 14_%d like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/14.%d.1 Mobile/15E148 Safari/604.1", v%8, v)
	case BrowserWKWebView:
		return fmt.Sprintf("Mozilla/5.0 (iPhone; CPU iPhone OS 14_%d like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Mobile/15E%d", v%8, 140+v)
	case BrowserSafari:
		if row.OS == OSLinux {
			// The sample's odd "Safari on Linux" row: a spoofed/embedded agent.
			return fmt.Sprintf("Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/13.1.%d Safari/605.1.15", v%3)
		}
		return fmt.Sprintf("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_%d) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/14.%d.1 Safari/605.1.15", v%8, v)
	case BrowserEdge:
		return fmt.Sprintf("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36 Edg/%d.0.%d.%d", chromeVer, 88+v, 700+v, 50+v)
	case BrowserIE:
		return fmt.Sprintf("Mozilla/5.0 (Windows NT 6.1; WOW64; Trident/7.0; rv:11.0) like Gecko MSIE %d.0", 9+v)
	case BrowserOpera:
		return fmt.Sprintf("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36 OPR/%d.0.%d.%d", chromeVer, 74+v, 3900+v, 60+v)
	case BrowserYandex:
		return fmt.Sprintf("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s YaBrowser/%d.2.0 Safari/537.36", chromeVer, 21+v)
	case BrowserSamsung:
		if row.OS == OSLinux {
			return fmt.Sprintf("Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) SamsungBrowser/%d.0 Chrome/%s Safari/537.36", 13+v, chromeVer)
		}
		return fmt.Sprintf("Mozilla/5.0 (Linux; Android 11; SAMSUNG SM-G99%d) AppleWebKit/537.36 (KHTML, like Gecko) SamsungBrowser/%d.0 Chrome/%s Mobile Safari/537.36", v%10, 13+v, chromeVer)
	case BrowserAndroidBrowser:
		return fmt.Sprintf("Mozilla/5.0 (Linux; U; Android 4.%d; en-us; GT-I950%d Build/JDQ39) AppleWebKit/534.30 (KHTML, like Gecko) Version/4.0 Mobile Safari/534.30", v%5, v%10)
	case BrowserElectron:
		switch row.OS {
		case OSWindows:
			return fmt.Sprintf("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) SomeApp/1.%d.0 Chrome/%s Electron/%d.1.0 Safari/537.36", v, chromeVer, 11+v)
		case OSMacOS:
			return fmt.Sprintf("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_%d) AppleWebKit/537.36 (KHTML, like Gecko) SomeApp/1.%d.0 Chrome/%s Electron/%d.1.0 Safari/537.36", v%8, v, chromeVer, 11+v)
		}
	case BrowserGoogleApp:
		return fmt.Sprintf("Mozilla/5.0 (iPhone; CPU iPhone OS 14_%d like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) GSA/143.%d.3668 Mobile/15E148 Safari/604.1", v%7, v)
	case BrowserOkhttp:
		return fmt.Sprintf("okhttp/4.%d.0", 7+v)
	case BrowserCryptoAPI:
		return fmt.Sprintf("Microsoft-CryptoAPI/10.0.%d", 19041+v)
	case BrowserAppleMail:
		return fmt.Sprintf("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_%d) AppleWebKit/605.1.15 (KHTML, like Gecko) Mail/3654.%d", v%8, 60+v)
	case BrowserAPIClient:
		clients := []string{
			"curl/7.%d.0", "python-requests/2.%d.0", "Go-http-client/1.1",
			"Java/11.0.%d", "Apache-HttpClient/4.5.%d", "axios/0.2%d.0",
			"Wget/1.%d", "node-fetch/1.%d", "Dalvik/2.1.0 (Linux; U; Android 1%d)",
			"PostmanRuntime/7.%d.0", "GuzzleHttp/7.%d", "libwww-perl/6.%d",
			"Python-urllib/3.%d", "aws-sdk-go/1.%d.0", "Ruby", "insomnia/2021.%d",
		}
		tmpl := clients[v%len(clients)]
		if tmpl == "Ruby" || tmpl == "Go-http-client/1.1" {
			return tmpl
		}
		return fmt.Sprintf(tmpl, 60+v)
	case BrowserUnknown:
		return fmt.Sprintf("CustomAgent-%d", v)
	}
	return fmt.Sprintf("UnmodeledAgent/%d", v)
}
