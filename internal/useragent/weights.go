package useragent

// This file exposes the Table 1 marginals as traffic weights: what
// fraction of the top-200 UA population routes to each root-store
// provider. The removal-impact simulator weights hypothetical distrust
// events by these shares, turning "store X loses root R" into "Y% of
// client traffic loses the anchor".

// Weights is a UA-traffic distribution over root-store providers.
type Weights struct {
	// Total is the population size the counts are drawn from (200 for the
	// paper sample).
	Total int
	// Providers maps each traceable provider to its UA count.
	Providers map[Provider]int
	// Untraceable counts agents the paper could not map to a store.
	Untraceable int
}

// WeightsFrom computes the provider marginals of a sample by running every
// (OS, client) row through the paper's mapping rules.
func WeightsFrom(rows []SampleRow) Weights {
	w := Weights{Providers: map[Provider]int{}}
	for _, row := range rows {
		w.Total += row.Versions
		m := MapToProvider(Agent{Browser: row.Browser, OS: row.OS})
		if m.Traceable {
			w.Providers[m.Provider] += row.Versions
		} else {
			w.Untraceable += row.Versions
		}
	}
	return w
}

// PaperWeights returns the Table 1 marginals: 154 of 200 agents traceable
// across NSS, Microsoft, Apple, Android and NodeJS.
func PaperWeights() Weights { return WeightsFrom(PaperSample()) }

// Share returns the provider's fraction of total traffic, 0 for unknown
// providers or an empty population.
func (w Weights) Share(p Provider) float64 {
	if w.Total == 0 {
		return 0
	}
	return float64(w.Providers[p]) / float64(w.Total)
}

// TraceableShare returns the fraction of traffic mapped to any store
// (the paper's 77%).
func (w Weights) TraceableShare() float64 {
	if w.Total == 0 {
		return 0
	}
	return float64(w.Total-w.Untraceable) / float64(w.Total)
}

// UntraceableShare returns the unmapped remainder.
func (w Weights) UntraceableShare() float64 {
	if w.Total == 0 {
		return 0
	}
	return float64(w.Untraceable) / float64(w.Total)
}
