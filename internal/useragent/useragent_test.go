package useragent

import (
	"testing"
)

func TestParseKnownStrings(t *testing.T) {
	cases := []struct {
		ua      string
		browser Browser
		os      OS
		version string
	}{
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/89.0.4389.82 Safari/537.36",
			BrowserChrome, OSWindows, "89",
		},
		{
			"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/14.0.3 Safari/605.1.15",
			BrowserSafari, OSMacOS, "14",
		},
		{
			"Mozilla/5.0 (iPhone; CPU iPhone OS 14_4 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/14.0 Mobile/15E148 Safari/604.1",
			BrowserMobileSafari, OSIOS, "14",
		},
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:86.0) Gecko/20100101 Firefox/86.0",
			BrowserFirefox, OSWindows, "86",
		},
		{
			"Mozilla/5.0 (Android 11; Mobile; rv:86.0) Gecko/86.0 Firefox/86.0",
			BrowserFirefoxMobile, OSAndroid, "86",
		},
		{
			"Mozilla/5.0 (Linux; Android 11; Pixel 4) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/89.0.4389.86 Mobile Safari/537.36",
			BrowserChromeMobile, OSAndroid, "89",
		},
		{
			"Mozilla/5.0 (Linux; Android 10; SM-G973F; wv) AppleWebKit/537.36 (KHTML, like Gecko) Version/4.0 Chrome/88.0.4324.181 Mobile Safari/537.36",
			BrowserChromeWebView, OSAndroid, "88",
		},
		{
			"Mozilla/5.0 (iPhone; CPU iPhone OS 14_4 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) CriOS/87.0.4280.77 Mobile/15E148 Safari/604.1",
			BrowserChromeIOS, OSIOS, "87",
		},
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/88.0.705.50 Safari/537.36 Edg/88.0.705.50",
			BrowserEdge, OSWindows, "88",
		},
		{
			"Mozilla/5.0 (Windows NT 6.1; WOW64; Trident/7.0; rv:11.0) like Gecko",
			BrowserIE, OSWindows, "",
		},
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/88.0.4324.182 Safari/537.36 OPR/74.0.3911.160",
			BrowserOpera, OSWindows, "74",
		},
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/88.0.4324.182 YaBrowser/21.2.0 Safari/537.36",
			BrowserYandex, OSWindows, "21",
		},
		{
			"Mozilla/5.0 (Linux; Android 11; SAMSUNG SM-G991B) AppleWebKit/537.36 (KHTML, like Gecko) SamsungBrowser/13.2 Chrome/83.0.4103.106 Mobile Safari/537.36",
			BrowserSamsung, OSAndroid, "13",
		},
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Slack/4.12.2 Chrome/87.0.4280.141 Electron/11.1.1 Safari/537.36",
			BrowserElectron, OSWindows, "11",
		},
		{
			"okhttp/4.9.0",
			BrowserOkhttp, OSUnknown, "4",
		},
		{
			"Microsoft-CryptoAPI/10.0",
			BrowserCryptoAPI, OSWindows, "10",
		},
		{
			"curl/7.68.0",
			BrowserAPIClient, OSUnknown, "",
		},
		{
			"python-requests/2.25.1",
			BrowserAPIClient, OSUnknown, "",
		},
		{
			"Mozilla/5.0 (X11; CrOS x86_64 13854.0.0) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/90.0.4430.41 Safari/537.36",
			BrowserChrome, OSChromeOS, "90",
		},
		{
			"Mozilla/5.0 (X11; Linux x86_64; rv:78.0) Gecko/20100101 Firefox/78.0",
			BrowserFirefox, OSLinux, "78",
		},
		{
			"", BrowserUnknown, OSUnknown, "",
		},
	}
	for _, c := range cases {
		got := Parse(c.ua)
		if got.Browser != c.browser {
			t.Errorf("Parse(%q).Browser = %q, want %q", c.ua, got.Browser, c.browser)
		}
		if got.OS != c.os {
			t.Errorf("Parse(%q).OS = %q, want %q", c.ua, got.OS, c.os)
		}
		if c.version != "" && got.Version != c.version {
			t.Errorf("Parse(%q).Version = %q, want %q", c.ua, got.Version, c.version)
		}
	}
}

func TestPaperSampleTotals(t *testing.T) {
	rows := PaperSample()
	total, included := 0, 0
	for _, r := range rows {
		total += r.Versions
		if r.Included {
			included += r.Versions
		}
	}
	if total != 200 {
		t.Errorf("sample total = %d, want 200", total)
	}
	if included != 154 {
		t.Errorf("included = %d, want 154 (77.0%%)", included)
	}
}

func TestGenerateRoundTripsThroughParser(t *testing.T) {
	// Every generated UA must be classified back to its row's (browser, OS):
	// the generator and parser are two halves of the Table 1 pipeline.
	for _, row := range PaperSample() {
		if row.Browser == BrowserUnknown || row.Browser == BrowserAPIClient {
			continue // classified by exclusion, checked separately
		}
		for v := 0; v < row.Versions; v++ {
			ua := uaString(row, v)
			got := Parse(ua)
			if got.Browser != row.Browser {
				t.Errorf("row %s/%s v%d: parsed browser %q from %q", row.OS, row.Browser, v, got.Browser, ua)
			}
			if got.OS != row.OS {
				t.Errorf("row %s/%s v%d: parsed OS %q from %q", row.OS, row.Browser, v, got.OS, ua)
			}
		}
	}
}

func TestGenerateAPIClientsClassified(t *testing.T) {
	row := SampleRow{OSUnknown, BrowserAPIClient, 16, false}
	for v := 0; v < row.Versions; v++ {
		ua := uaString(row, v)
		got := Parse(ua)
		if got.Browser != BrowserAPIClient && got.Browser != BrowserUnknown {
			t.Errorf("API client %q parsed as %q", ua, got.Browser)
		}
	}
}

func TestGenerateCount(t *testing.T) {
	uas := Generate(PaperSample())
	if len(uas) != 200 {
		t.Errorf("generated %d UAs, want 200", len(uas))
	}
	seen := map[string]bool{}
	dups := 0
	for _, ua := range uas {
		if seen[ua] {
			dups++
		}
		seen[ua] = true
	}
	if dups > 0 {
		t.Errorf("%d duplicate UA strings generated", dups)
	}
}

func TestMapToProviderRules(t *testing.T) {
	cases := []struct {
		browser   Browser
		os        OS
		provider  Provider
		traceable bool
	}{
		{BrowserFirefox, OSWindows, ProviderNSS, true},
		{BrowserFirefox, OSLinux, ProviderNSS, true},
		{BrowserFirefoxMobile, OSAndroid, ProviderNSS, true},
		{BrowserChrome, OSWindows, ProviderMicrosoft, true},
		{BrowserChrome, OSMacOS, ProviderApple, true},
		{BrowserChromeMobile, OSAndroid, ProviderAndroid, true},
		{BrowserChrome, OSChromeOS, ProviderUnknown, false},
		{BrowserChrome, OSLinux, ProviderUnknown, false},
		{BrowserChromeIOS, OSIOS, ProviderApple, true},
		{BrowserMobileSafari, OSIOS, ProviderApple, true},
		{BrowserWKWebView, OSIOS, ProviderApple, true},
		{BrowserSafari, OSMacOS, ProviderApple, true},
		{BrowserSafari, OSLinux, ProviderUnknown, false},
		{BrowserEdge, OSWindows, ProviderMicrosoft, true},
		{BrowserIE, OSWindows, ProviderMicrosoft, true},
		{BrowserOpera, OSWindows, ProviderMicrosoft, true},
		{BrowserElectron, OSWindows, ProviderNodeJS, true},
		{BrowserElectron, OSMacOS, ProviderNodeJS, true},
		{BrowserYandex, OSWindows, ProviderUnknown, false},
		{BrowserSamsung, OSAndroid, ProviderUnknown, false},
		{BrowserOkhttp, OSUnknown, ProviderUnknown, false},
		{BrowserAPIClient, OSUnknown, ProviderUnknown, false},
		{BrowserCryptoAPI, OSWindows, ProviderUnknown, false},
	}
	for _, c := range cases {
		got := MapToProvider(Agent{Browser: c.browser, OS: c.os})
		if got.Provider != c.provider || got.Traceable != c.traceable {
			t.Errorf("MapToProvider(%s on %s) = (%q, %v), want (%q, %v)",
				c.browser, c.os, got.Provider, got.Traceable, c.provider, c.traceable)
		}
		if got.Reason == "" {
			t.Errorf("MapToProvider(%s on %s) has empty reason", c.browser, c.os)
		}
	}
}

func TestFamilyRollup(t *testing.T) {
	cases := map[Provider]Family{
		ProviderNSS:       FamilyNSS,
		ProviderAndroid:   FamilyNSS,
		ProviderNodeJS:    FamilyNSS,
		ProviderLinux:     FamilyNSS,
		ProviderMicrosoft: FamilyMicrosoft,
		ProviderApple:     FamilyApple,
		ProviderJava:      FamilyJava,
		ProviderUnknown:   FamilyUnknown,
	}
	for p, want := range cases {
		if got := FamilyOf(p); got != want {
			t.Errorf("FamilyOf(%q) = %q, want %q", p, got, want)
		}
	}
}

func TestCoverageMatchesPaper(t *testing.T) {
	// Running the full pipeline over the generated sample must reproduce
	// Table 1's bottom line: 77% of the top-200 traceable.
	uas := Generate(PaperSample())
	traced := 0
	for _, ua := range uas {
		if MapToProvider(Parse(ua)).Traceable {
			traced++
		}
	}
	pct := float64(traced) / float64(len(uas)) * 100
	if pct < 74 || pct > 80 {
		t.Errorf("traceable = %d/200 (%.1f%%), paper reports 77.0%%", traced, pct)
	}
}
