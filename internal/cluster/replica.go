package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/store"
)

// ReplicaConfig configures a Replica. OriginURL is required; everything
// else has working defaults.
type ReplicaConfig struct {
	// OriginURL is the origin's base URL, e.g. "http://origin:8080".
	OriginURL string
	// Client performs all origin requests; http.DefaultClient when nil.
	// Supply one with a Transport timeout budget larger than WaitFor.
	Client *http.Client
	// Interval is the minimum spacing between manifest polls when the
	// origin does not hold long-polls open (default 15s).
	Interval time.Duration
	// WaitFor is the long-poll duration requested via ?wait=. Zero
	// disables long-polling and falls back to plain Interval polling.
	WaitFor time.Duration
	// CacheDir holds downloaded archives as <hash>.rootpack files. Created
	// if missing; a private temp dir is used when empty. A persistent dir
	// gives the replica a last-known-good generation across restarts.
	CacheDir string
	// MaxBackoff caps the jittered exponential backoff after origin
	// failures (default 2m).
	MaxBackoff time.Duration
	// KeepCached bounds how many verified archives stay in CacheDir
	// (default 2: current + previous).
	KeepCached int
	// OnSwap is invoked after each verified download decodes, with the new
	// database and the manifest it came from. This is where cmd/trustd
	// hot-swaps the serving generation. May be nil (Bootstrap-only use).
	OnSwap func(*store.Database, Manifest)
	// Logger receives sync logs; slog.Default() when nil.
	Logger *slog.Logger
	// Tracer records sync/fetch/decode/swap spans; nil disables tracing.
	Tracer *obs.Tracer
}

func (c ReplicaConfig) withDefaults() (ReplicaConfig, error) {
	if c.OriginURL == "" {
		return c, errors.New("cluster: ReplicaConfig.OriginURL is required")
	}
	c.OriginURL = strings.TrimRight(c.OriginURL, "/")
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Minute
	}
	if c.KeepCached <= 0 {
		c.KeepCached = 2
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.CacheDir == "" {
		dir, err := os.MkdirTemp("", "trustd-cluster-*")
		if err != nil {
			return c, fmt.Errorf("cluster: create cache dir: %w", err)
		}
		c.CacheDir = dir
	} else if err := os.MkdirAll(c.CacheDir, 0o755); err != nil {
		return c, fmt.Errorf("cluster: create cache dir: %w", err)
	}
	return c, nil
}

// Replica keeps one trustd node converged on its origin's archive. It
// downloads into a content-addressed cache with resume, verifies the
// whole-file hash plus per-section digests before anything decodes, and
// keeps serving its last good generation through origin outages.
type Replica struct {
	cfg ReplicaConfig
	log *slog.Logger

	mu      sync.Mutex
	current Manifest // last manifest successfully synced (zero before first)
	db      *store.Database

	originEpoch atomic.Uint64 // newest epoch the origin has advertised
	syncedEpoch atomic.Uint64 // epoch this replica serves
	lastSync    atomic.Int64  // unix seconds of last successful sync
	fetchErrors atomic.Uint64
	swaps       atomic.Uint64
	fetchBytes  atomic.Uint64
	resumes     atomic.Uint64
}

// NewReplica validates the config and prepares the cache directory. It
// performs no network I/O; call Bootstrap or Run.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Replica{cfg: cfg, log: cfg.Logger}, nil
}

// Current returns the manifest of the generation this replica serves; ok
// is false before the first successful sync or cache load.
func (r *Replica) Current() (Manifest, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current, r.current.Hash != ""
}

// Bootstrap produces the replica's first serving database. It tries one
// fresh sync; if the origin is unreachable and the cache holds a verified
// archive from a previous run, that last-known-good generation is served
// instead (its epoch is whatever the cache recorded). With neither, it
// retries the origin with jittered backoff until ctx ends.
func (r *Replica) Bootstrap(ctx context.Context) (*store.Database, Manifest, error) {
	bo := newBackoff(r.cfg.MaxBackoff)
	for {
		if _, err := r.SyncOnce(ctx); err == nil {
			r.mu.Lock()
			db, m := r.db, r.current
			r.mu.Unlock()
			return db, m, nil
		} else if ctx.Err() != nil {
			return nil, Manifest{}, ctx.Err()
		} else {
			r.fetchErrors.Add(1)
			if db, m, ok := r.loadNewestCached(); ok {
				r.log.Warn("cluster: origin unreachable at bootstrap, serving cached generation",
					"err", err, "hash", m.Hash[:12], "epoch", m.Epoch)
				r.install(db, m, false)
				return db, m, nil
			}
			d := bo.next()
			r.log.Warn("cluster: bootstrap sync failed, retrying", "err", err, "backoff", d)
			select {
			case <-ctx.Done():
				return nil, Manifest{}, ctx.Err()
			case <-time.After(d):
			}
		}
	}
}

// Run keeps the replica converged until ctx ends. Failures back off
// exponentially with ±50% jitter and reset on the next success; the
// current generation keeps serving throughout.
func (r *Replica) Run(ctx context.Context) error {
	bo := newBackoff(r.cfg.MaxBackoff)
	for {
		start := time.Now()
		swapped, err := r.SyncOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var sleep time.Duration
		if err != nil {
			r.fetchErrors.Add(1)
			sleep = bo.next()
			r.log.Warn("cluster: sync failed", "err", err, "backoff", sleep)
		} else {
			bo.reset()
			if !swapped {
				// A long-poll that just timed out has already waited its
				// share; only top up to Interval after fast 304s.
				sleep = r.cfg.Interval - time.Since(start)
			}
		}
		if sleep > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(sleep):
			}
		}
	}
}

// SyncOnce performs one manifest check and, when the origin offers a new
// archive, the full download → verify → decode → swap sequence. It reports
// whether a new generation was installed.
func (r *Replica) SyncOnce(ctx context.Context) (swapped bool, err error) {
	ctx, span := r.cfg.Tracer.Start(ctx, "cluster.sync")
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		} else if !swapped {
			span.Discard() // idle polls would drown the trace ring
		}
		span.End()
	}()

	m, changed, err := r.fetchManifest(ctx)
	if err != nil {
		return false, err
	}
	r.originEpoch.Store(m.Epoch)
	if !changed {
		r.lastSync.Store(time.Now().Unix())
		return false, nil
	}

	path, err := r.fetchArchive(ctx, m)
	if err != nil {
		return false, err
	}
	db, err := r.decodeArchive(ctx, path, m)
	if err != nil {
		return false, err
	}

	_, swapSpan := obs.StartSpan(ctx, "cluster.swap")
	r.install(db, m, true)
	swapSpan.End()
	r.pruneCache(m.Hash)
	r.log.Info("cluster: synced generation",
		"hash", m.Hash[:12], "epoch", m.Epoch, "size", m.Size)
	return true, nil
}

// fetchManifest asks the origin for its manifest, long-polling when the
// replica already serves a generation. changed is false when the origin
// still offers what we serve (304 or identical hash).
func (r *Replica) fetchManifest(ctx context.Context) (Manifest, bool, error) {
	cur, haveCur := r.Current()
	url := r.cfg.OriginURL + "/cluster/v1/manifest"
	if haveCur && r.cfg.WaitFor > 0 {
		url += "?wait=" + r.cfg.WaitFor.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Manifest{}, false, err
	}
	if haveCur {
		req.Header.Set("If-None-Match", cur.ETag())
	}
	res, err := r.cfg.Client.Do(req)
	if err != nil {
		return Manifest{}, false, err
	}
	defer func() {
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}()
	switch res.StatusCode {
	case http.StatusNotModified:
		// Same content, but the epoch may still be news: after a cache
		// bootstrap (epoch unknown) or an origin restart (publishes
		// renumbered) the 304's X-Rootpack-Epoch is the only signal.
		if v := res.Header.Get("X-Rootpack-Epoch"); v != "" {
			if e, perr := strconv.ParseUint(v, 10, 64); perr == nil && e != cur.Epoch {
				cur.Epoch = e
				r.adoptEpoch(e)
			}
		}
		return cur, false, nil
	case http.StatusOK:
	default:
		return Manifest{}, false, fmt.Errorf("cluster: manifest fetch: %s", res.Status)
	}
	var m Manifest
	if err := json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&m); err != nil {
		return Manifest{}, false, fmt.Errorf("cluster: decode manifest: %w", err)
	}
	if !m.Valid() {
		return Manifest{}, false, fmt.Errorf("cluster: origin sent invalid manifest %+v", m)
	}
	return m, m.Hash != cur.Hash, nil
}

// fetchArchive ensures CacheDir holds a fully verified copy of the
// manifest's archive and returns its path. A matching cached file is
// reused; a leftover partial download is resumed with a Range request.
func (r *Replica) fetchArchive(ctx context.Context, m Manifest) (string, error) {
	final := filepath.Join(r.cfg.CacheDir, m.Hash+".rootpack")
	if err := r.verifyFile(final, m); err == nil {
		return final, nil // already downloaded and intact
	} else if !os.IsNotExist(err) {
		os.Remove(final) // cached copy went bad; refetch
	}

	ctx, span := obs.StartSpan(ctx, "cluster.fetch")
	defer span.End()
	span.SetAttr("hash", m.Hash[:12])

	partial := final + ".partial"
	if err := r.download(ctx, m, partial); err != nil {
		return "", err
	}
	if err := r.verifyFile(partial, m); err != nil {
		os.Remove(partial) // poisoned bytes must not survive to resume
		return "", err
	}
	if err := os.Rename(partial, final); err != nil {
		return "", err
	}
	return final, nil
}

// download writes the archive blob to path, resuming any previous partial
// content with a Range request. The origin serves immutable
// content-addressed blobs, so appending to a partial file of the same hash
// is always coherent.
func (r *Replica) download(ctx context.Context, m Manifest, path string) error {
	var offset int64
	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 && fi.Size() < m.Size {
		offset = fi.Size()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.cfg.OriginURL+"/cluster/v1/archive/"+m.Hash, nil)
	if err != nil {
		return err
	}
	if offset > 0 {
		req.Header.Set("Range", "bytes="+strconv.FormatInt(offset, 10)+"-")
	}
	res, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}()

	flags := os.O_CREATE | os.O_WRONLY
	switch res.StatusCode {
	case http.StatusPartialContent:
		flags |= os.O_APPEND
		r.resumes.Add(1)
	case http.StatusOK:
		flags |= os.O_TRUNC // origin ignored the range; start over
	default:
		return fmt.Errorf("cluster: archive fetch: %s", res.Status)
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	n, copyErr := io.Copy(f, res.Body)
	r.fetchBytes.Add(uint64(n))
	if err := f.Close(); err != nil && copyErr == nil {
		copyErr = err
	}
	if copyErr != nil {
		// Keep the partial file: whatever landed is resumable next round.
		return fmt.Errorf("cluster: archive download: %w", copyErr)
	}
	return nil
}

// verifyFile checks that path holds exactly the archive the manifest
// names: right size, parseable footer, matching content hash, and a clean
// whole-file hash recompute. Nothing decodes before this passes.
func (r *Replica) verifyFile(path string, m Manifest) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() != m.Size {
		return fmt.Errorf("cluster: archive %s is %d bytes, manifest says %d",
			filepath.Base(path), fi.Size(), m.Size)
	}
	ar, err := archive.Open(path)
	if err != nil {
		return err
	}
	defer ar.Close()
	want, err := m.HashBytes()
	if err != nil {
		return err
	}
	if ar.ContentHash() != want {
		return fmt.Errorf("cluster: archive %s footer hash does not match manifest %s",
			filepath.Base(path), m.Hash[:12])
	}
	return ar.VerifyContentHash()
}

// decodeArchive opens the verified file and decodes the database, with
// per-section digest checks folded into the decode path.
func (r *Replica) decodeArchive(ctx context.Context, path string, m Manifest) (*store.Database, error) {
	ctx, span := obs.StartSpan(ctx, "cluster.decode")
	defer span.End()
	ar, err := archive.Open(path)
	if err != nil {
		return nil, err
	}
	defer ar.Close()
	want, err := m.HashBytes()
	if err != nil {
		return nil, err
	}
	if ar.ContentHash() != want {
		return nil, fmt.Errorf("cluster: archive changed between verify and decode")
	}
	return ar.DatabaseCtx(ctx)
}

// adoptEpoch realigns the stored manifest's epoch with the origin's
// advertisement when the content already matches — gauges follow
// immediately; the serving layer's epoch catches up on the next publish.
func (r *Replica) adoptEpoch(e uint64) {
	r.mu.Lock()
	if r.current.Hash != "" {
		r.current.Epoch = e
	}
	r.mu.Unlock()
	r.syncedEpoch.Store(e)
}

// install records the new serving generation and, when notify is set,
// invokes OnSwap.
func (r *Replica) install(db *store.Database, m Manifest, notify bool) {
	r.mu.Lock()
	r.current, r.db = m, db
	r.mu.Unlock()
	r.syncedEpoch.Store(m.Epoch)
	r.originEpoch.Store(max(r.originEpoch.Load(), m.Epoch))
	r.lastSync.Store(time.Now().Unix())
	r.swaps.Add(1)
	if notify && r.cfg.OnSwap != nil {
		r.cfg.OnSwap(db, m)
	}
}

// loadNewestCached scans CacheDir for verified .rootpack files and decodes
// the newest one. The manifest is reconstructed from the file itself
// (hash, size); the epoch is unknown offline and reported as 0 — it
// corrects itself on the first successful sync.
func (r *Replica) loadNewestCached() (*store.Database, Manifest, bool) {
	entries, err := os.ReadDir(r.cfg.CacheDir)
	if err != nil {
		return nil, Manifest{}, false
	}
	type cand struct {
		path string
		mod  time.Time
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rootpack") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		cands = append(cands, cand{filepath.Join(r.cfg.CacheDir, e.Name()), fi.ModTime()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mod.After(cands[j].mod) })
	for _, c := range cands {
		ar, err := archive.Open(c.path)
		if err != nil {
			continue
		}
		if err := ar.Verify(); err != nil {
			ar.Close()
			continue
		}
		db, err := ar.Database()
		hash := ar.ContentHash()
		fi, statErr := os.Stat(c.path)
		ar.Close()
		if err != nil || statErr != nil {
			continue
		}
		m := Manifest{Hash: hexHash(hash), Size: fi.Size(), CompiledAt: fi.ModTime().UTC()}
		return db, m, true
	}
	return nil, Manifest{}, false
}

// pruneCache deletes cached archives beyond KeepCached, never touching the
// one just installed. Stale .partial files for other hashes go too.
func (r *Replica) pruneCache(keepHash string) {
	entries, err := os.ReadDir(r.cfg.CacheDir)
	if err != nil {
		return
	}
	type cand struct {
		path string
		mod  time.Time
	}
	var packs []cand
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(r.cfg.CacheDir, name)
		if strings.HasSuffix(name, ".partial") && !strings.HasPrefix(name, keepHash) {
			os.Remove(full)
			continue
		}
		if !strings.HasSuffix(name, ".rootpack") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		packs = append(packs, cand{full, fi.ModTime()})
	}
	if len(packs) <= r.cfg.KeepCached {
		return
	}
	sort.Slice(packs, func(i, j int) bool { return packs[i].mod.After(packs[j].mod) })
	for _, p := range packs[r.cfg.KeepCached:] {
		if filepath.Base(p.path) != keepHash+".rootpack" {
			os.Remove(p.path)
		}
	}
}

// StatsFamilies exports the replica's convergence metrics; it satisfies
// service.StatsSource. cluster_replica_lag_seconds is the time since the
// last successful manifest check — a replica that cannot reach its origin
// shows unbounded growth here while cluster_origin_epoch minus
// cluster_replica_epoch exposes how many generations behind it is.
func (r *Replica) StatsFamilies(prefix string) []obs.MetricFamily {
	var lag float64
	if ts := r.lastSync.Load(); ts > 0 {
		lag = time.Since(time.Unix(ts, 0)).Seconds()
	}
	return []obs.MetricFamily{
		obs.GaugeFamily(prefix+"cluster_replica_epoch", "Epoch of the generation this replica serves.", float64(r.syncedEpoch.Load())),
		obs.GaugeFamily(prefix+"cluster_origin_epoch", "Newest epoch the origin has advertised to this replica.", float64(r.originEpoch.Load())),
		obs.GaugeFamily(prefix+"cluster_replica_lag_seconds", "Seconds since the last successful manifest check.", lag),
		obs.CounterFamily(prefix+"cluster_fetch_errors_total", "Failed sync attempts.", float64(r.fetchErrors.Load())),
		obs.CounterFamily(prefix+"cluster_swaps_total", "Generations installed by this replica.", float64(r.swaps.Load())),
		obs.CounterFamily(prefix+"cluster_fetch_bytes_total", "Archive bytes downloaded.", float64(r.fetchBytes.Load())),
		obs.CounterFamily(prefix+"cluster_resumes_total", "Downloads resumed from a partial file.", float64(r.resumes.Load())),
	}
}

// backoff is jittered exponential: base 500ms doubling to max, each delay
// scaled by a uniform ±50% so a fleet losing its origin does not
// resynchronise into a reconnect stampede.
type backoff struct {
	cur, max time.Duration
}

func newBackoff(max time.Duration) *backoff {
	return &backoff{cur: 500 * time.Millisecond, max: max}
}

func (b *backoff) next() time.Duration {
	d := time.Duration(float64(b.cur) * (0.5 + rand.Float64()))
	b.cur = min(b.cur*2, b.max)
	return d
}

func (b *backoff) reset() { b.cur = 500 * time.Millisecond }
