package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/httpcond"
	"repro/internal/obs"
	"repro/internal/store"
)

// OriginOptions configures an Origin. The zero value works.
type OriginOptions struct {
	// Logger receives publish and serve logs; slog.Default() when nil.
	Logger *slog.Logger
	// Tracer records publish spans; nil disables tracing.
	Tracer *obs.Tracer
	// MaxWait caps the ?wait= long-poll duration a client may request
	// (default 60s). Longer requests are clamped, not rejected.
	MaxWait time.Duration
}

// Origin is the distribution head of a trustd cluster: it holds the
// current archive in memory and serves the manifest + blob endpoints.
// Publish installs a new archive atomically; the previous blob is kept
// so replicas mid-download of generation N never 404 when generation N+1
// lands.
type Origin struct {
	log     *slog.Logger
	tracer  *obs.Tracer
	maxWait time.Duration

	mu       sync.Mutex
	manifest Manifest
	blob     []byte
	prev     Manifest // previous generation, still downloadable
	prevBlob []byte
	notify   chan struct{} // closed (and replaced) on each publish

	publishes    atomic.Uint64
	manifestReqs atomic.Uint64
	archiveReqs  atomic.Uint64
	bytesServed  atomic.Uint64
	waiters      atomic.Int64
}

// NewOrigin builds an origin with no published archive; its handler
// returns 503 for the manifest until the first Publish.
func NewOrigin(opts OriginOptions) *Origin {
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = 60 * time.Second
	}
	return &Origin{
		log:     opts.Logger,
		tracer:  opts.Tracer,
		maxWait: opts.MaxWait,
		notify:  make(chan struct{}),
	}
}

// Publish encodes db into a fresh rootpack archive and offers it to the
// fleet. Publishing a database whose archive hashes identically to the
// current one is a no-op (the epoch does not move), so callers may publish
// unconditionally on every reload. sourceHash ties the archive back to the
// input material it was compiled from (zero when unknown).
func (o *Origin) Publish(ctx context.Context, db *store.Database, sourceHash [archive.HashLen]byte) (Manifest, error) {
	ctx, span := o.tracer.Start(ctx, "cluster.publish")
	defer span.End()

	var buf bytes.Buffer
	_, encSpan := obs.StartSpan(ctx, "cluster.encode")
	hash, err := archive.Encode(&buf, db, sourceHash)
	encSpan.End()
	if err != nil {
		return Manifest{}, err
	}
	return o.publishBlob(buf.Bytes(), hash), nil
}

// PublishArchive offers pre-encoded archive bytes (e.g. a .rootpack file
// compiled elsewhere). The blob is fully verified before it is offered.
func (o *Origin) PublishArchive(blob []byte) (Manifest, error) {
	r, err := archive.NewReader(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		return Manifest{}, err
	}
	if err := r.Verify(); err != nil {
		return Manifest{}, err
	}
	return o.publishBlob(blob, r.ContentHash()), nil
}

func (o *Origin) publishBlob(blob []byte, hash [archive.HashLen]byte) Manifest {
	m := Manifest{
		Hash:       hexHash(hash),
		Size:       int64(len(blob)),
		CompiledAt: time.Now().UTC(),
	}
	o.mu.Lock()
	if m.Hash == o.manifest.Hash {
		cur := o.manifest
		o.mu.Unlock()
		return cur // identical content: keep epoch and blob
	}
	m.Epoch = o.manifest.Epoch + 1
	if o.manifest.Hash != "" {
		o.prev, o.prevBlob = o.manifest, o.blob
	}
	o.manifest, o.blob = m, blob
	close(o.notify) // wake parked long-polls
	o.notify = make(chan struct{})
	o.mu.Unlock()

	o.publishes.Add(1)
	o.log.Info("cluster: published archive",
		"hash", m.Hash[:12], "size", m.Size, "epoch", m.Epoch)
	return m
}

// Manifest returns the currently offered manifest; ok is false before the
// first publish.
func (o *Origin) Manifest() (Manifest, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.manifest, o.manifest.Hash != ""
}

// snapshot returns the current manifest plus the notification channel that
// will close on the next publish — the pair a long-poll needs atomically.
func (o *Origin) snapshot() (Manifest, <-chan struct{}) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.manifest, o.notify
}

// Handler serves the cluster wire protocol. Routes use absolute paths so
// the handler can be mounted directly on a service mux.
func (o *Origin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/v1/manifest", o.handleManifest)
	mux.HandleFunc("GET /cluster/v1/archive/{hash}", o.handleArchive)
	return mux
}

// handleManifest serves the current manifest. With If-None-Match naming
// the current archive and ?wait=, the request parks until a new publish
// or the wait elapses (304). Without wait it behaves as a plain
// conditional GET.
func (o *Origin) handleManifest(w http.ResponseWriter, r *http.Request) {
	o.manifestReqs.Add(1)

	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, "wait must be a non-negative duration", http.StatusBadRequest)
			return
		}
		wait = min(d, o.maxWait)
	}

	m, notify := o.snapshot()
	if m.Hash == "" {
		http.Error(w, "no archive published yet", http.StatusServiceUnavailable)
		return
	}
	inm := r.Header.Get("If-None-Match")
	if wait > 0 && httpcond.MatchIfNoneMatch(inm, m.ETag()) {
		o.waiters.Add(1)
		timer := time.NewTimer(wait)
		select {
		case <-notify:
			m, _ = o.snapshot()
		case <-timer.C:
		case <-r.Context().Done():
		}
		timer.Stop()
		o.waiters.Add(-1)
	}

	w.Header().Set("ETag", m.ETag())
	w.Header().Set("Cache-Control", "no-cache")
	w.Header()["X-Rootpack-Hash"] = []string{m.Hash}
	w.Header()["X-Rootpack-Epoch"] = []string{strconv.FormatUint(m.Epoch, 10)}
	if httpcond.MatchIfNoneMatch(inm, m.ETag()) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(m); err != nil {
		o.log.Warn("cluster: write manifest", "err", err)
	}
}

// handleArchive serves a blob by content hash. The current and the
// immediately previous generation are addressable; anything else is gone.
// http.ServeContent supplies Range semantics, which is what makes replica
// download resume work.
func (o *Origin) handleArchive(w http.ResponseWriter, r *http.Request) {
	o.archiveReqs.Add(1)
	hash := r.PathValue("hash")

	o.mu.Lock()
	var blob []byte
	var m Manifest
	switch hash {
	case o.manifest.Hash:
		blob, m = o.blob, o.manifest
	case o.prev.Hash:
		blob, m = o.prevBlob, o.prev
	}
	o.mu.Unlock()
	if blob == nil {
		http.Error(w, "unknown archive hash", http.StatusNotFound)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", m.ETag())
	w.Header()["X-Rootpack-Hash"] = []string{m.Hash}
	w.Header()["X-Rootpack-Epoch"] = []string{strconv.FormatUint(m.Epoch, 10)}
	cw := &countingWriter{ResponseWriter: w}
	// Immutable content: the modtime is irrelevant for caching (the hash is
	// the identity), but ServeContent wants one for Last-Modified.
	http.ServeContent(cw, r, hash+".rootpack", m.CompiledAt, bytes.NewReader(blob))
	o.bytesServed.Add(uint64(cw.n))
}

type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

// StatsFamilies exports the origin's distribution metrics; it satisfies
// service.StatsSource so cmd/trustd can register the origin on the node's
// /metrics/prometheus endpoint.
func (o *Origin) StatsFamilies(prefix string) []obs.MetricFamily {
	m, _ := o.Manifest()
	return []obs.MetricFamily{
		obs.GaugeFamily(prefix+"cluster_origin_epoch", "Epoch of the archive the origin currently offers.", float64(m.Epoch)),
		obs.CounterFamily(prefix+"cluster_publishes_total", "Distinct archives published by the origin.", float64(o.publishes.Load())),
		obs.CounterFamily(prefix+"cluster_manifest_requests_total", "Manifest requests served.", float64(o.manifestReqs.Load())),
		obs.CounterFamily(prefix+"cluster_archive_requests_total", "Archive blob requests served.", float64(o.archiveReqs.Load())),
		obs.CounterFamily(prefix+"cluster_archive_bytes_total", "Archive bytes written to replicas.", float64(o.bytesServed.Load())),
		obs.GaugeFamily(prefix+"cluster_manifest_waiters", "Long-poll manifest requests currently parked.", float64(o.waiters.Load())),
	}
}

func hexHash(h [archive.HashLen]byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 2*len(h))
	for _, b := range h {
		out = append(out, digits[b>>4], digits[b&0xf])
	}
	return string(out)
}
