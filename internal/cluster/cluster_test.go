package cluster_test

// Unit coverage for the distribution fabric: origin wire semantics
// (conditional GET, long-poll, Range, blob retention), replica
// download/verify/swap, resume after a mid-transfer abort, corrupt-blob
// rejection with last-known-good fallback, and cold restart from the
// content-addressed cache.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func ts(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

// testDB builds a two-provider database over the shared test roots at the
// given indices. Distinct versions produce distinct archive hashes.
func testDB(t *testing.T, version string, idx ...int) *store.Database {
	t.Helper()
	db := store.NewDatabase()
	for _, provider := range []string{"NSS", "Debian"} {
		snap := store.NewSnapshot(provider, version, ts(2021, 6, 1))
		for _, i := range idx {
			e, err := store.NewTrustedEntry(testcerts.Roots(i+1)[i].DER, store.ServerAuth)
			if err != nil {
				t.Fatal(err)
			}
			snap.Add(e)
		}
		if err := db.AddSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func publish(t *testing.T, o *cluster.Origin, db *store.Database) cluster.Manifest {
	t.Helper()
	m, err := o.Publish(context.Background(), db, [archive.HashLen]byte{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fetchManifest(t *testing.T, base string, hdr map[string]string) (*http.Response, cluster.Manifest) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, base+"/cluster/v1/manifest", nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var m cluster.Manifest
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
	}
	res.Body.Close()
	return res, m
}

func TestOriginManifestAndArchive(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// Before any publish the manifest endpoint refuses service.
	if res, _ := fetchManifest(t, srv.URL, nil); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish manifest status %d, want 503", res.StatusCode)
	}

	want := publish(t, o, testDB(t, "v1", 0, 1))
	if want.Epoch != 1 || len(want.Hash) != 64 || want.Size <= 0 {
		t.Fatalf("published manifest malformed: %+v", want)
	}

	res, got := fetchManifest(t, srv.URL, nil)
	if res.StatusCode != http.StatusOK || got.Hash != want.Hash || got.Epoch != 1 {
		t.Fatalf("manifest = %+v (status %d), want %+v", got, res.StatusCode, want)
	}
	if etag := res.Header.Get("ETag"); etag != want.ETag() {
		t.Fatalf("manifest ETag %q, want %q", etag, want.ETag())
	}
	if h := res.Header.Get("X-Rootpack-Hash"); h != want.Hash {
		t.Fatalf("manifest X-Rootpack-Hash %q, want %q", h, want.Hash)
	}

	// Conditional GET with the current tag revalidates to 304; a stale or
	// weak-form tag list still matches per RFC 9110 weak comparison.
	for _, inm := range []string{want.ETag(), `W/"zzz", W/` + want.ETag(), `"a", ` + want.ETag()} {
		if res, _ := fetchManifest(t, srv.URL, map[string]string{"If-None-Match": inm}); res.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, res.StatusCode)
		}
	}
	if res, _ := fetchManifest(t, srv.URL, map[string]string{"If-None-Match": `"stale"`}); res.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", res.StatusCode)
	}

	// The blob round-trips and re-verifies.
	blobRes, err := http.Get(srv.URL + "/cluster/v1/archive/" + want.Hash)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(blobRes.Body)
	blobRes.Body.Close()
	if int64(len(blob)) != want.Size {
		t.Fatalf("blob is %d bytes, manifest says %d", len(blob), want.Size)
	}
	ar, err := archive.NewReader(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.Verify(); err != nil {
		t.Fatalf("served blob failed verification: %v", err)
	}

	// Range support: the second half of the blob comes back as 206.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/cluster/v1/archive/"+want.Hash, nil)
	req.Header.Set("Range", "bytes=100-")
	rangeRes, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := io.ReadAll(rangeRes.Body)
	rangeRes.Body.Close()
	if rangeRes.StatusCode != http.StatusPartialContent {
		t.Fatalf("range request status %d, want 206", rangeRes.StatusCode)
	}
	if !bytes.Equal(part, blob[100:]) {
		t.Fatal("range response bytes do not match the blob tail")
	}

	if res, err := http.Get(srv.URL + "/cluster/v1/archive/" + strings.Repeat("ab", 32)); err != nil {
		t.Fatal(err)
	} else if res.Body.Close(); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash status %d, want 404", res.StatusCode)
	}
}

func TestOriginPublishDedupAndRetention(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	m1 := publish(t, o, testDB(t, "v1", 0))
	again := publish(t, o, testDB(t, "v1", 0))
	if again.Epoch != m1.Epoch || again.Hash != m1.Hash {
		t.Fatalf("republishing identical content moved the manifest: %+v -> %+v", m1, again)
	}

	m2 := publish(t, o, testDB(t, "v2", 0, 1))
	if m2.Epoch != m1.Epoch+1 {
		t.Fatalf("epoch %d after new publish, want %d", m2.Epoch, m1.Epoch+1)
	}
	// A replica mid-download of the previous generation must not 404.
	for _, h := range []string{m1.Hash, m2.Hash} {
		res, err := http.Get(srv.URL + "/cluster/v1/archive/" + h)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("archive %s status %d, want 200", h[:12], res.StatusCode)
		}
	}
	// Two generations back is gone.
	m3 := publish(t, o, testDB(t, "v3", 1))
	_ = m3
	res, err := http.Get(srv.URL + "/cluster/v1/archive/" + m1.Hash)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("evicted archive status %d, want 404", res.StatusCode)
	}
}

func TestOriginLongPoll(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	m1 := publish(t, o, testDB(t, "v1", 0))

	// A wait with no change times out as 304.
	start := time.Now()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/cluster/v1/manifest?wait=150ms", nil)
	req.Header.Set("If-None-Match", m1.ETag())
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotModified {
		t.Fatalf("long-poll timeout status %d, want 304", res2.StatusCode)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatal("long-poll returned before the wait elapsed")
	}

	// A publish during the wait wakes the poll with the new manifest.
	type result struct {
		status int
		m      cluster.Manifest
	}
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/cluster/v1/manifest?wait=10s", nil)
		req.Header.Set("If-None-Match", m1.ETag())
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{status: -1}
			return
		}
		var m cluster.Manifest
		json.NewDecoder(res.Body).Decode(&m)
		res.Body.Close()
		done <- result{res.StatusCode, m}
	}()
	time.Sleep(100 * time.Millisecond) // let the poll park
	m2 := publish(t, o, testDB(t, "v2", 0, 1))
	select {
	case r := <-done:
		if r.status != http.StatusOK || r.m.Hash != m2.Hash || r.m.Epoch != m2.Epoch {
			t.Fatalf("woken poll returned %+v (status %d), want %+v", r.m, r.status, m2)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll not woken by publish")
	}

	// Malformed wait is a 400, not a hang.
	badRes, err := http.Get(srv.URL + "/cluster/v1/manifest?wait=potato")
	if err != nil {
		t.Fatal(err)
	}
	badRes.Body.Close()
	if badRes.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait status %d, want 400", badRes.StatusCode)
	}
}

// faultGate wraps an origin handler with switchable failure injection for
// the archive endpoint: full outage, truncation after N body bytes, or
// bit-flipped body bytes. This is how the tests "kill" the origin and
// corrupt the network path without racing on listeners.
type faultGate struct {
	inner      http.Handler
	down       atomic.Bool
	truncateAt atomic.Int64 // >0: serve N archive body bytes, then abort
	corrupt    atomic.Bool  // flip a byte in every archive response
	sawRange   atomic.Bool
}

func (g *faultGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		http.Error(w, "origin down", http.StatusServiceUnavailable)
		return
	}
	if strings.Contains(r.URL.Path, "/archive/") {
		if r.Header.Get("Range") != "" {
			g.sawRange.Store(true)
		}
		if n := g.truncateAt.Load(); n > 0 {
			g.inner.ServeHTTP(&truncatingWriter{ResponseWriter: w, remaining: n}, r)
			return
		}
		if g.corrupt.Load() {
			g.inner.ServeHTTP(&corruptingWriter{ResponseWriter: w}, r)
			return
		}
	}
	g.inner.ServeHTTP(w, r)
}

type truncatingWriter struct {
	http.ResponseWriter
	remaining int64
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if int64(len(p)) >= t.remaining {
		t.ResponseWriter.Write(p[:t.remaining])
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush() // the truncated prefix must reach the client
		}
		panic(http.ErrAbortHandler) // then cut the connection mid-body
	}
	t.remaining -= int64(len(p))
	return t.ResponseWriter.Write(p)
}

type corruptingWriter struct {
	http.ResponseWriter
	wrote int64
}

func (c *corruptingWriter) Write(p []byte) (int, error) {
	// Flip one bit in the byte at absolute offset 64 — inside section
	// data, past the header, before the footer.
	q := p
	if c.wrote <= 64 && 64 < c.wrote+int64(len(p)) {
		q = bytes.Clone(p)
		q[64-c.wrote] ^= 0x40
	}
	n, err := c.ResponseWriter.Write(q)
	c.wrote += int64(n)
	return n, err
}

func newReplica(t *testing.T, originURL, cacheDir string, onSwap func(*store.Database, cluster.Manifest)) *cluster.Replica {
	t.Helper()
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		OriginURL:  originURL,
		CacheDir:   cacheDir,
		Interval:   20 * time.Millisecond,
		WaitFor:    200 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		OnSwap:     onSwap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestReplicaSyncAndSwap(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	db1 := testDB(t, "v1", 0, 1)
	m1 := publish(t, o, db1)

	var swapped []cluster.Manifest
	rep := newReplica(t, srv.URL, t.TempDir(), func(_ *store.Database, m cluster.Manifest) {
		swapped = append(swapped, m)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	db, m, err := rep.Bootstrap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hash != m1.Hash || m.Epoch != 1 {
		t.Fatalf("bootstrap manifest %+v, want %+v", m, m1)
	}
	if err := archive.Equal(db, db1); err != nil {
		t.Fatalf("bootstrapped database differs from published one: %v", err)
	}

	// Idle poll: nothing changed, nothing swapped.
	if sw, err := rep.SyncOnce(ctx); err != nil || sw {
		t.Fatalf("idle SyncOnce = (%v, %v), want (false, nil)", sw, err)
	}

	db2 := testDB(t, "v2", 1, 2)
	m2 := publish(t, o, db2)
	sw, err := rep.SyncOnce(ctx)
	if err != nil || !sw {
		t.Fatalf("SyncOnce after publish = (%v, %v), want (true, nil)", sw, err)
	}
	// OnSwap fired once for the bootstrap generation and once for m2.
	if len(swapped) != 2 || swapped[0].Hash != m1.Hash || swapped[1].Hash != m2.Hash || swapped[1].Epoch != 2 {
		t.Fatalf("OnSwap calls = %+v, want [m1 m2]", swapped)
	}
	if cur, _ := rep.Current(); cur.Hash != m2.Hash {
		t.Fatalf("Current() = %+v, want %+v", cur, m2)
	}
}

func TestReplicaResumesPartialDownload(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	gate := &faultGate{inner: o.Handler()}
	srv := httptest.NewServer(gate)
	defer srv.Close()
	m := publish(t, o, testDB(t, "v1", 0, 1, 2))

	cache := t.TempDir()
	rep := newReplica(t, srv.URL, cache, nil)
	ctx := context.Background()

	// First attempt dies mid-body, leaving a resumable partial file.
	cut := m.Size / 3
	gate.truncateAt.Store(cut)
	if _, err := rep.SyncOnce(ctx); err == nil {
		t.Fatal("SyncOnce succeeded through a truncated transfer")
	}
	partial := filepath.Join(cache, m.Hash+".rootpack.partial")
	if fi, err := os.Stat(partial); err != nil || fi.Size() != cut {
		t.Fatalf("partial file after abort: %v (size %v), want %d bytes", err, fiSize(fi), cut)
	}

	// Second attempt resumes with a Range request and completes.
	gate.truncateAt.Store(0)
	sw, err := rep.SyncOnce(ctx)
	if err != nil || !sw {
		t.Fatalf("resumed SyncOnce = (%v, %v), want (true, nil)", sw, err)
	}
	if !gate.sawRange.Load() {
		t.Fatal("resume never sent a Range request")
	}
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Fatalf("partial file still present after successful sync: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(cache, m.Hash+".rootpack")); err != nil || fi.Size() != m.Size {
		t.Fatalf("cached archive: %v (size %v), want %d bytes", err, fiSize(fi), m.Size)
	}
}

func fiSize(fi os.FileInfo) int64 {
	if fi == nil {
		return -1
	}
	return fi.Size()
}

func TestReplicaRejectsCorruptArchiveKeepsLastGood(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	gate := &faultGate{inner: o.Handler()}
	srv := httptest.NewServer(gate)
	defer srv.Close()
	m1 := publish(t, o, testDB(t, "v1", 0, 1))

	rep := newReplica(t, srv.URL, t.TempDir(), nil)
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}

	// The next generation arrives bit-flipped: the replica must refuse it
	// and keep serving m1.
	gate.corrupt.Store(true)
	publish(t, o, testDB(t, "v2", 1, 2))
	if _, err := rep.SyncOnce(ctx); err == nil {
		t.Fatal("SyncOnce accepted a corrupted archive")
	}
	if cur, ok := rep.Current(); !ok || cur.Hash != m1.Hash {
		t.Fatalf("after corrupt download Current() = %+v, want last good %s", cur, m1.Hash[:12])
	}

	// Once the network heals, the same generation syncs cleanly — the
	// poisoned partial must not wedge the retry.
	gate.corrupt.Store(false)
	sw, err := rep.SyncOnce(ctx)
	if err != nil || !sw {
		t.Fatalf("post-heal SyncOnce = (%v, %v), want (true, nil)", sw, err)
	}
}

func TestReplicaBootstrapFromCacheWhenOriginDown(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	srv := httptest.NewServer(o.Handler())
	db1 := testDB(t, "v1", 0, 1)
	m1 := publish(t, o, db1)

	cache := t.TempDir()
	rep1 := newReplica(t, srv.URL, cache, nil)
	ctx := context.Background()
	if _, _, err := rep1.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close() // origin gone

	// A fresh replica process over the same cache dir serves the cached
	// generation instead of failing.
	rep2 := newReplica(t, srv.URL, cache, nil)
	db, m, err := rep2.Bootstrap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hash != m1.Hash {
		t.Fatalf("cache bootstrap hash %s, want %s", m.Hash[:12], m1.Hash[:12])
	}
	if err := archive.Equal(db, db1); err != nil {
		t.Fatalf("cache-bootstrapped database differs: %v", err)
	}

	// With no cache and no origin, Bootstrap respects the context.
	rep3 := newReplica(t, srv.URL, t.TempDir(), nil)
	shortCtx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	if _, _, err := rep3.Bootstrap(shortCtx); err == nil {
		t.Fatal("Bootstrap with no origin and no cache reported success")
	}
}

func TestReplicaAdoptsEpochAfterCacheBootstrap(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	gate := &faultGate{inner: o.Handler()}
	srv := httptest.NewServer(gate)
	defer srv.Close()
	publish(t, o, testDB(t, "v1", 0))
	m2 := publish(t, o, testDB(t, "v2", 0, 1)) // epoch 2

	// First replica fills the cache, then disappears.
	cache := t.TempDir()
	ctx := context.Background()
	if _, _, err := newReplica(t, srv.URL, cache, nil).Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}

	// A replica restarted during an origin outage bootstraps from cache
	// with epoch 0 (unknowable offline)...
	gate.down.Store(true)
	rep := newReplica(t, srv.URL, cache, nil)
	if _, m, err := rep.Bootstrap(ctx); err != nil || m.Epoch != 0 || m.Hash != m2.Hash {
		t.Fatalf("cache bootstrap = (%+v, %v), want epoch 0 with cached hash", m, err)
	}

	// ...and learns the real epoch from the first 304's header once the
	// origin returns, even though the content never changes.
	gate.down.Store(false)
	if sw, err := rep.SyncOnce(ctx); err != nil || sw {
		t.Fatalf("matched-content SyncOnce = (%v, %v), want (false, nil)", sw, err)
	}
	if cur, _ := rep.Current(); cur.Epoch != m2.Epoch {
		t.Fatalf("epoch after 304 = %d, want origin's %d", cur.Epoch, m2.Epoch)
	}
}

func TestReplicaCachePruning(t *testing.T) {
	o := cluster.NewOrigin(cluster.OriginOptions{})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	cache := t.TempDir()
	rep := newReplica(t, srv.URL, cache, nil)
	ctx := context.Background()
	for i, v := range []string{"v1", "v2", "v3", "v4"} {
		publish(t, o, testDB(t, v, i%3))
		if _, err := rep.SyncOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	var packs int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".rootpack") {
			packs++
		}
	}
	if packs > 2 {
		t.Fatalf("cache holds %d archives after pruning, want <= 2", packs)
	}
	// The current generation always survives pruning.
	cur, _ := rep.Current()
	if _, err := os.Stat(filepath.Join(cache, cur.Hash+".rootpack")); err != nil {
		t.Fatalf("current generation pruned from cache: %v", err)
	}
}

func TestManifestHashBytes(t *testing.T) {
	m := cluster.Manifest{Hash: strings.Repeat("0a", 32), Size: 10}
	h, err := m.HashBytes()
	if err != nil || h[0] != 0x0a {
		t.Fatalf("HashBytes = (%v, %v)", h, err)
	}
	for _, bad := range []string{"", "zz", strings.Repeat("ab", 31)} {
		if _, err := (cluster.Manifest{Hash: bad, Size: 1}).HashBytes(); err == nil {
			t.Errorf("HashBytes(%q) accepted a malformed hash", bad)
		}
	}
	if (cluster.Manifest{Hash: strings.Repeat("ab", 32), Size: 0}).Valid() {
		t.Error("zero-size manifest reported valid")
	}
}
