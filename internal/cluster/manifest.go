// Package cluster turns trustd's content-addressed rootpack archives into
// a distribution fabric: one origin node compiles and serves archives, a
// fleet of replicas polls the origin's manifest, downloads new archives
// into a local content-addressed cache, verifies them end to end, and
// hot-swaps the serving generation — no shared disk, no restarts.
//
// The wire protocol is two endpoints, both plain HTTP:
//
//	GET /cluster/v1/manifest        -> Manifest JSON (long-poll capable)
//	GET /cluster/v1/archive/{hash}  -> raw .rootpack bytes (Range capable)
//
// The manifest endpoint honours If-None-Match against the archive's
// content hash and an optional ?wait= duration, so an idle fleet costs one
// parked request per replica instead of a poll storm. The archive endpoint
// serves immutable blobs — a hash names exactly one byte sequence forever —
// which makes resume (Range), caching, and verification trivial.
package cluster

import (
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/archive"
)

// Manifest describes the archive an origin currently offers. It is the
// entire coordination surface between origin and replicas: everything else
// (the blob itself) is content-addressed by Hash.
type Manifest struct {
	// Hash is the hex-encoded rootpack content hash — the same value the
	// blob's footer carries and the same value replicas re-derive from the
	// downloaded bytes. It doubles as the manifest's ETag.
	Hash string `json:"hash"`
	// Size is the exact archive length in bytes; replicas use it to
	// validate downloads and to resume interrupted ones.
	Size int64 `json:"size"`
	// Epoch counts distinct publishes on the origin, strictly increasing.
	// Replicas adopt it verbatim so a load balancer comparing
	// X-Rootpack-Epoch across the fleet sees one consistent clock.
	Epoch uint64 `json:"epoch"`
	// CompiledAt is when the origin encoded this archive (UTC).
	CompiledAt time.Time `json:"compiled_at"`
}

// ETag is the manifest's strong entity tag: the quoted content hash.
func (m Manifest) ETag() string { return `"` + m.Hash + `"` }

// HashBytes decodes the manifest's hex hash into the binary form the
// archive layer compares against.
func (m Manifest) HashBytes() ([archive.HashLen]byte, error) {
	var h [archive.HashLen]byte
	raw, err := hex.DecodeString(m.Hash)
	if err != nil || len(raw) != archive.HashLen {
		return h, fmt.Errorf("cluster: manifest hash %q is not %d hex bytes", m.Hash, archive.HashLen)
	}
	copy(h[:], raw)
	return h, nil
}

// Valid reports whether the manifest is structurally usable: a well-formed
// hash and a plausible size.
func (m Manifest) Valid() bool {
	_, err := m.HashBytes()
	return err == nil && m.Size > 0
}
