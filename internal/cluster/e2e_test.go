package cluster_test

// Multi-node end-to-end: one origin node (service + mounted cluster
// endpoints) feeding three replicas, each fronting its own service.Server,
// under continuous query load. The fleet must converge on every publish
// within a bounded window, survive an origin outage without failing a
// single query (last-known-good), re-converge after recovery, and expose
// the replica-lag/epoch gauges on /metrics/prometheus.

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/store"
)

type replicaNode struct {
	rep *cluster.Replica
	svc *service.Server
	web *httptest.Server
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func startReplicaNode(t *testing.T, originURL string) *replicaNode {
	t.Helper()
	ctx := t.Context()
	var svcPtr atomic.Pointer[service.Server]
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		OriginURL:  originURL,
		CacheDir:   t.TempDir(),
		Interval:   25 * time.Millisecond,
		WaitFor:    250 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Logger:     quietLogger(),
		OnSwap: func(db *store.Database, m cluster.Manifest) {
			if s := svcPtr.Load(); s != nil {
				hb, err := m.HashBytes()
				if err != nil {
					return
				}
				s.SwapArchive(db, hb, m.Epoch)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	db, m, err := rep.Bootstrap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(db, service.Config{Logger: quietLogger()})
	hb, err := m.HashBytes()
	if err != nil {
		t.Fatal(err)
	}
	svc.SwapArchive(db, hb, m.Epoch)
	svc.AddStatsSource(rep)
	svcPtr.Store(svc)
	go rep.Run(ctx)
	web := httptest.NewServer(svc.Handler())
	t.Cleanup(web.Close)
	return &replicaNode{rep: rep, svc: svc, web: web}
}

// waitConverged polls until every node serves wantHash or the deadline
// passes.
func waitConverged(t *testing.T, nodes []*replicaNode, wantHash string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		lagging := 0
		for _, n := range nodes {
			if hash, _ := n.svc.Generation(); hash != wantHash {
				lagging++
			}
		}
		if lagging == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d/%d replicas still not on %s after %v", lagging, len(nodes), wantHash[:12], within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node e2e skipped in -short mode")
	}
	ctx := t.Context()

	// Origin node: a full service with the cluster endpoints mounted on the
	// same listener, exactly as cmd/trustd -origin wires it.
	db1 := testDB(t, "v1", 0, 1)
	org := cluster.NewOrigin(cluster.OriginOptions{Logger: quietLogger()})
	m1, err := org.Publish(ctx, db1, [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	originSvc := service.New(db1, service.Config{Logger: quietLogger()})
	hb1, _ := m1.HashBytes()
	originSvc.SwapArchive(db1, hb1, m1.Epoch)
	originSvc.Mount("/cluster/", org.Handler())
	originSvc.AddStatsSource(org)
	gate := &faultGate{inner: originSvc.Handler()}
	originWeb := httptest.NewServer(gate)
	defer originWeb.Close()

	// The cluster endpoints are reachable through the service mux.
	res, err := http.Get(originWeb.URL + "/cluster/v1/manifest")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("mounted manifest endpoint status %d, want 200", res.StatusCode)
	}

	nodes := make([]*replicaNode, 3)
	for i := range nodes {
		nodes[i] = startReplicaNode(t, originWeb.URL)
	}
	waitConverged(t, nodes, m1.Hash, 5*time.Second)

	// Continuous query load against every replica for the whole scenario.
	// Any response that is not a clean 200 is a failed query.
	var failed atomic.Uint64
	var queries atomic.Uint64
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	for _, n := range nodes {
		go func(base string) {
			defer func() { loadDone <- struct{}{} }()
			client := &http.Client{Timeout: 5 * time.Second}
			paths := []string{"/v1/providers", "/healthz", "/v1/diff?a=NSS&b=Debian"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := client.Get(base + paths[i%len(paths)])
				queries.Add(1)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}(n.web.URL)
	}

	// Roll a new generation through the fleet under load.
	db2 := testDB(t, "v2", 1, 2)
	m2, err := org.Publish(ctx, db2, [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	originSvc.SwapArchive(db2, mustHashBytes(t, m2), m2.Epoch)
	waitConverged(t, nodes, m2.Hash, 10*time.Second)

	// Kill the origin. Replicas keep serving m2 (last-known-good) and the
	// query load must not notice.
	gate.down.Store(true)
	time.Sleep(400 * time.Millisecond) // several failed sync rounds
	for i, n := range nodes {
		if hash, epoch := n.svc.Generation(); hash != m2.Hash || epoch != m2.Epoch {
			t.Fatalf("replica %d dropped its generation during origin outage: %s/%d", i, hash[:12], epoch)
		}
	}

	// Recovery: origin returns with a third generation; the fleet
	// re-converges from backoff.
	db3 := testDB(t, "v3", 0, 2)
	m3, err := org.Publish(ctx, db3, [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	originSvc.SwapArchive(db3, mustHashBytes(t, m3), m3.Epoch)
	gate.down.Store(false)
	waitConverged(t, nodes, m3.Hash, 10*time.Second)

	close(stop)
	for range nodes {
		<-loadDone
	}
	if q, f := queries.Load(), failed.Load(); f != 0 || q == 0 {
		t.Fatalf("%d of %d queries failed during rolls and origin outage", f, q)
	}

	// Every replica now advertises the final generation on the wire.
	for i, n := range nodes {
		res, err := http.Get(n.web.URL + "/v1/providers")
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if h := res.Header.Get("X-Rootpack-Hash"); h != m3.Hash {
			t.Errorf("replica %d X-Rootpack-Hash %q, want %q", i, h, m3.Hash)
		}
		if e := res.Header.Get("X-Rootpack-Epoch"); e != fmt.Sprint(m3.Epoch) {
			t.Errorf("replica %d X-Rootpack-Epoch %s, want %d", i, e, m3.Epoch)
		}
	}

	// The convergence gauges are on the Prometheus endpoint of both roles.
	repText := promText(t, nodes[0].web.URL)
	for _, want := range []string{
		"trustd_cluster_replica_epoch " + fmt.Sprint(m3.Epoch),
		"trustd_cluster_origin_epoch " + fmt.Sprint(m3.Epoch),
		"trustd_cluster_replica_lag_seconds",
		"trustd_cluster_swaps_total",
	} {
		if !strings.Contains(repText, want) {
			t.Errorf("replica exposition missing %q", want)
		}
	}
	orgText := promText(t, originWeb.URL)
	for _, want := range []string{
		"trustd_cluster_origin_epoch " + fmt.Sprint(m3.Epoch),
		"trustd_cluster_publishes_total 3",
		"trustd_cluster_archive_bytes_total",
	} {
		if !strings.Contains(orgText, want) {
			t.Errorf("origin exposition missing %q", want)
		}
	}
}

func mustHashBytes(t *testing.T, m cluster.Manifest) [32]byte {
	t.Helper()
	hb, err := m.HashBytes()
	if err != nil {
		t.Fatal(err)
	}
	return hb
}

func promText(t *testing.T, base string) string {
	t.Helper()
	res, err := http.Get(base + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
