package archive

import (
	"bytes"
	"math/rand"
	"testing"
)

// These tests model the failure shapes of an archive arriving over the
// network (the cluster replica download path) rather than from local disk:
// a transfer cut mid-section that still leaves plausible head and tail
// bytes, and single flipped bytes anywhere in the payload. The contract is
// that Open + VerifyContentHash together refuse every such file, so a
// replica can gate its hot swap on them and keep serving last-known-good.

// TestVerifyContentHashDetectsBitRot flips one byte at a time across the
// whole file (sampled) and demands the pipeline reject each mutant at some
// stage — footer parse, content-hash verification, or decode.
func TestVerifyContentHashDetectsBitRot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDatabase(t, rng)
	data, _ := encodeToBytes(t, db)

	step := len(data)/97 + 1
	for off := 0; off < len(data); off += step {
		mutant := append([]byte(nil), data...)
		mutant[off] ^= 0x40
		r, err := NewReader(bytes.NewReader(mutant), int64(len(mutant)))
		if err != nil {
			continue // footer refused it — fine
		}
		if err := r.VerifyContentHash(); err == nil {
			t.Errorf("offset %d: flipped byte survived VerifyContentHash", off)
		}
	}
}

// TestVerifyContentHashAcceptsIntact is the positive control.
func TestVerifyContentHashAcceptsIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randomDatabase(t, rng)
	data, hash := encodeToBytes(t, db)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyContentHash(); err != nil {
		t.Fatalf("intact archive failed VerifyContentHash: %v", err)
	}
	if r.ContentHash() != hash {
		t.Fatal("footer content hash does not match Encode's return")
	}
}

// TestTruncatedMidSectionNeverDecodes cuts the file at every section
// boundary and in the middle of every section. A truncated prefix must
// fail at open (no trailer); a "resumed" download that spliced the real
// tail onto a truncated middle must fail section checksums or the content
// hash — never materialize a database.
func TestTruncatedMidSectionNeverDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randomDatabase(t, rng)
	data, _ := encodeToBytes(t, db)

	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var cuts []int64
	for _, m := range r.sections {
		cuts = append(cuts, m.offset, m.offset+m.length/2, m.offset+m.length)
	}
	for _, cut := range cuts {
		if cut <= 0 || cut >= int64(len(data)) {
			continue
		}
		// Plain truncation: the tail (footer + trailer) is gone.
		trunc := data[:cut]
		if tr, err := NewReader(bytes.NewReader(trunc), int64(len(trunc))); err == nil {
			if tr.VerifyContentHash() == nil {
				if _, derr := tr.Database(); derr == nil {
					t.Errorf("cut at %d: truncated file decoded cleanly", cut)
				}
			}
		}

		// Hole in the middle with the true tail reattached — the shape a
		// broken ranged resume produces. The footer parses (it is intact),
		// so only the integrity checks stand between this file and a swap.
		const hole = 64
		if cut+hole >= int64(len(data))-trailerLen {
			continue
		}
		spliced := append(append([]byte(nil), data[:cut]...), data[cut+hole:]...)
		sr, err := NewReader(bytes.NewReader(spliced), int64(len(spliced)))
		if err != nil {
			continue // footer geometry refused it
		}
		if sr.VerifyContentHash() == nil {
			t.Errorf("cut at %d: spliced file passed VerifyContentHash", cut)
		}
		if _, err := sr.Database(); err == nil {
			if err := sr.VerifyContentHash(); err == nil {
				t.Errorf("cut at %d: spliced file decoded cleanly", cut)
			}
		}
	}
}
