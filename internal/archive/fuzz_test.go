package archive

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the reader. The invariant: the
// decoder never panics, and any input that decodes successfully is a
// well-formed archive whose database re-encodes and decodes back to an
// Equal database — corruption either fails loudly or does not exist.
func FuzzDecode(f *testing.F) {
	for seed := int64(0); seed < 3; seed++ {
		db := randomDatabase(f, rand.New(rand.NewSource(seed)))
		data, _ := encodeToBytes(f, db)
		f.Add(data)
		// Seed a few mutants so the fuzzer starts near the format's cliffs.
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Add([]byte(magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := decodeBytes(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, db, [HashLen]byte{}); err != nil {
			t.Fatalf("decoded database fails to re-encode: %v", err)
		}
		back, err := decodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded archive fails to decode: %v", err)
		}
		if err := Equal(db, back); err != nil {
			t.Fatalf("decode→encode→decode not equal: %v", err)
		}
	})
}
