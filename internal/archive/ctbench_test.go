package archive_test

// Cold-start benchmarks over a non-TLS corpus: a snapshot tree of CT-log
// get-roots documents plus a TPM-vendor manifest, ingested through format
// detection versus decoded from a compiled rootpack sidecar. The new
// codecs must ride the same compile-on-ingest cache at the same ratio the
// TLS formats do — and the ecosystem kinds must survive the round trip.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/ctlog"
	"repro/internal/manifest"
	"repro/internal/store"
	"repro/internal/testcerts"
)

var ctBenchFixture struct {
	once    sync.Once
	root    string
	sidecar string
	snaps   int
	err     error
}

// buildCTBenchFixture lays out four CT logs whose accepted sets only grow
// (accumulation gives the content-addressed pool heavy duplication to
// exploit, like real logs) plus a manifest provider, then compiles the
// sidecar.
func buildCTBenchFixture() {
	f := &ctBenchFixture
	f.root, f.err = os.MkdirTemp("", "rootpack-ctbench-*")
	if f.err != nil {
		return
	}
	entries := testcerts.Entries(72, store.ServerAuth)
	versions := []string{
		"2018-01-01", "2018-07-01", "2019-01-01", "2019-07-01",
		"2020-01-01", "2020-07-01", "2021-01-01", "2021-07-01",
	}
	for vi, version := range versions {
		// Each scrape sees everything the log ever accepted, plus a few
		// newly accepted roots.
		window := entries[:48+vi*3]
		for _, log := range []string{"CT-A", "CT-B", "CT-C", "CT-D"} {
			dir := filepath.Join(f.root, log, version)
			if f.err = os.MkdirAll(dir, 0o755); f.err != nil {
				return
			}
			if f.err = ctlog.WriteDir(dir, window); f.err != nil {
				return
			}
			f.snaps++
		}
	}
	for _, version := range versions[:2] {
		dir := filepath.Join(f.root, "TPM-Vendors", version)
		if f.err = os.MkdirAll(dir, 0o755); f.err != nil {
			return
		}
		if f.err = manifest.WriteDir(dir, manifest.FromEntries("TPM-Vendors", entries[60:])); f.err != nil {
			return
		}
		f.snaps++
	}

	var db *store.Database
	if db, f.err = catalog.LoadTree(f.root, catalog.Options{Archive: catalog.ArchiveOff}); f.err != nil {
		return
	}
	var th [archive.HashLen]byte
	if th, f.err = catalog.TreeHash(f.root); f.err != nil {
		return
	}
	f.sidecar = filepath.Join(f.root, catalog.DefaultArchiveName)
	_, f.err = archive.WriteFile(f.sidecar, db, th)
}

func ctBenchTree(tb testing.TB) (tree, sidecar string, snaps int) {
	tb.Helper()
	ctBenchFixture.once.Do(buildCTBenchFixture)
	if ctBenchFixture.err != nil {
		tb.Fatalf("build CT bench fixture: %v", ctBenchFixture.err)
	}
	return ctBenchFixture.root, ctBenchFixture.sidecar, ctBenchFixture.snaps
}

// BenchmarkColdStartParseCT ingests the CT tree through the get-roots and
// manifest codecs, bypassing any sidecar.
func BenchmarkColdStartParseCT(b *testing.B) {
	tree, _, snaps := ctBenchTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := catalog.LoadTree(tree, catalog.Options{Archive: catalog.ArchiveOff})
		if err != nil {
			b.Fatal(err)
		}
		if db.TotalSnapshots() != snaps {
			b.Fatalf("parsed %d snapshots, want %d", db.TotalSnapshots(), snaps)
		}
	}
}

// BenchmarkColdStartArchiveCT decodes the compiled sidecar directly.
func BenchmarkColdStartArchiveCT(b *testing.B) {
	_, sidecar, snaps := ctBenchTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := archive.ReadFile(sidecar)
		if err != nil {
			b.Fatal(err)
		}
		if db.TotalSnapshots() != snaps {
			b.Fatalf("decoded %d snapshots, want %d", db.TotalSnapshots(), snaps)
		}
	}
}

// TestColdStartSpeedupCT pins the acceptance ratio for the non-TLS codecs:
// decoding the archive must be at least 10x faster than re-parsing the
// get-roots/manifest tree, and the decoded database — ecosystem kinds
// included — must equal the parsed one.
func TestColdStartSpeedupCT(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	tree, sidecar, _ := ctBenchTree(t)

	parsed, err := catalog.LoadTree(tree, catalog.Options{Archive: catalog.ArchiveOff})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := archive.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	if err := archive.Equal(parsed, decoded); err != nil {
		t.Fatalf("archive round trip lost data: %v", err)
	}
	for prov, want := range map[string]store.Kind{
		"CT-A": store.KindCT, "CT-D": store.KindCT, "TPM-Vendors": store.KindManifest,
	} {
		if got := decoded.History(prov).Latest().Kind.Normalize(); got != want {
			t.Errorf("%s: decoded kind %q, want %q", prov, got, want)
		}
	}

	const rounds = 3
	var parse, dec time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := catalog.LoadTree(tree, catalog.Options{Archive: catalog.ArchiveOff}); err != nil {
			t.Fatal(err)
		}
		parse += time.Since(start)

		start = time.Now()
		if _, err := archive.ReadFile(sidecar); err != nil {
			t.Fatal(err)
		}
		dec += time.Since(start)
	}
	if dec*10 > parse {
		t.Fatalf("CT cold start not >=10x faster: parse=%v decode=%v (%.1fx)",
			parse/rounds, dec/rounds, float64(parse)/float64(dec))
	}
	t.Logf("CT cold start: parse=%v decode=%v (%.1fx faster)",
		parse/rounds, dec/rounds, float64(parse)/float64(dec))
}
