package archive

// Low-level wire helpers shared by the writer and reader: little-endian
// fixed ints, unsigned varints, length-prefixed blobs, time instants and
// packed bitset words.

import (
	"encoding/binary"
	"math"
	"time"
)

// enc accumulates one section's bytes.
type enc struct{ buf []byte }

func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *enc) blob(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) str(s string) { e.blob([]byte(s)) }

// instant encodes a time as Unix seconds + nanoseconds. The zero time's
// instant (year 1) round-trips to a time for which IsZero is true, so no
// sentinel is needed; locations are normalized to UTC.
func (e *enc) instant(t time.Time) {
	e.u64(uint64(t.Unix()))
	e.u32(uint32(t.Nanosecond()))
}

// words encodes a packed bitset word slice (trailing zeros already
// trimmed by bitset.Words).
func (e *enc) words(ws []uint64) {
	e.uvarint(uint64(len(ws)))
	for _, w := range ws {
		e.u64(w)
	}
}

// dec walks one section's bytes, latching the first error.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.remaining() < n {
		d.fail(corruptf("truncated: need %d bytes, have %d", n, d.remaining()))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(corruptf("invalid varint at offset %d", d.off))
		return 0
	}
	d.off += n
	return v
}

// count reads a varint count of items each at least itemSize bytes wide,
// rejecting counts the remaining bytes cannot possibly hold (a fuzz guard
// against giant allocations from a corrupt length).
func (d *dec) count(itemSize int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(math.MaxInt32) || int64(v)*int64(itemSize) > int64(d.remaining()) {
		d.fail(corruptf("count %d exceeds section size", v))
		return 0
	}
	return int(v)
}

func (d *dec) blob() []byte {
	n := d.count(1)
	return d.take(n)
}

func (d *dec) str() string { return string(d.blob()) }

func (d *dec) instant() time.Time {
	sec := int64(d.u64())
	nsec := d.u32()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

func (d *dec) words() []uint64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = d.u64()
	}
	return ws
}
