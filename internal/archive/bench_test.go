package archive_test

// Cold-start benchmarks: the same on-disk snapshot tree loaded through the
// native format parsers versus decoded from a compiled rootpack sidecar.
// The ratio between the two is the number cmd/rootpack exists for; CI's
// bench-smoke runs both with -benchtime=1x as a regression tripwire.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/certdata"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/testcerts"
)

var benchFixture struct {
	once    sync.Once
	root    string // snapshot tree
	sidecar string // compiled archive for the same tree
	err     error
}

// buildBenchFixture lays out a moderate multi-provider, multi-version tree
// (a sliding window over shared roots, so the content-addressed pool has
// real duplication to exploit) and compiles its sidecar. Runs once per
// process; the temp dir lives until the process exits.
func buildBenchFixture() {
	f := &benchFixture
	f.root, f.err = os.MkdirTemp("", "rootpack-bench-*")
	if f.err != nil {
		return
	}
	entries := testcerts.Entries(48, store.ServerAuth, store.EmailProtection)
	versions := []string{
		"2019-01-01", "2019-07-01", "2020-01-01", "2020-07-01",
		"2021-01-01", "2021-07-01", "2022-01-01", "2022-07-01",
	}
	for vi, version := range versions {
		// Each release drops one old root and keeps a 40-root window.
		window := entries[vi : vi+40]
		for _, provider := range []string{"Debian", "Ubuntu", "Alpine"} {
			dir := filepath.Join(f.root, provider, version)
			if f.err = os.MkdirAll(dir, 0o755); f.err != nil {
				return
			}
			var out *os.File
			if out, f.err = os.Create(filepath.Join(dir, "tls-ca-bundle.pem")); f.err != nil {
				return
			}
			f.err = pemstore.WriteBundle(out, window)
			out.Close()
			if f.err != nil {
				return
			}
		}
		dir := filepath.Join(f.root, "NSS", version)
		if f.err = os.MkdirAll(dir, 0o755); f.err != nil {
			return
		}
		var out *os.File
		if out, f.err = os.Create(filepath.Join(dir, "certdata.txt")); f.err != nil {
			return
		}
		f.err = certdata.Marshal(out, window)
		out.Close()
		if f.err != nil {
			return
		}
	}

	// Compile the sidecar the archive benchmarks decode.
	var db *store.Database
	if db, f.err = catalog.LoadTree(f.root, catalog.Options{Archive: catalog.ArchiveOff}); f.err != nil {
		return
	}
	var th [archive.HashLen]byte
	if th, f.err = catalog.TreeHash(f.root); f.err != nil {
		return
	}
	f.sidecar = filepath.Join(f.root, catalog.DefaultArchiveName)
	_, f.err = archive.WriteFile(f.sidecar, db, th)
}

func benchTree(tb testing.TB) (tree, sidecar string) {
	tb.Helper()
	benchFixture.once.Do(buildBenchFixture)
	if benchFixture.err != nil {
		tb.Fatalf("build bench fixture: %v", benchFixture.err)
	}
	return benchFixture.root, benchFixture.sidecar
}

// BenchmarkColdStartParse is the baseline: ingest the tree through the
// native certdata/PEM parsers, bypassing any sidecar.
func BenchmarkColdStartParse(b *testing.B) {
	tree, _ := benchTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := catalog.LoadTree(tree, catalog.Options{Archive: catalog.ArchiveOff})
		if err != nil {
			b.Fatal(err)
		}
		if db.TotalSnapshots() != 32 {
			b.Fatalf("parsed %d snapshots, want 32", db.TotalSnapshots())
		}
	}
}

// BenchmarkColdStartArchive decodes the compiled sidecar directly — the
// trustd -archive serving path.
func BenchmarkColdStartArchive(b *testing.B) {
	_, sidecar := benchTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := archive.ReadFile(sidecar)
		if err != nil {
			b.Fatal(err)
		}
		if db.TotalSnapshots() != 32 {
			b.Fatalf("decoded %d snapshots, want 32", db.TotalSnapshots())
		}
	}
}

// BenchmarkColdStartSidecar is the honest end-to-end path trustd -tree
// takes on a warm cache: hash the tree, match the sidecar, decode it.
func BenchmarkColdStartSidecar(b *testing.B) {
	tree, _ := benchTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, info, err := catalog.LoadTreeInfo(tree, catalog.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !info.FromArchive {
			b.Fatal("sidecar fast path not taken")
		}
	}
}

// BenchmarkArchiveEncode isolates the compile cost (what ingest adds when
// it writes the sidecar).
func BenchmarkArchiveEncode(b *testing.B) {
	tree, _ := benchTree(b)
	db, err := catalog.LoadTree(tree, catalog.Options{Archive: catalog.ArchiveOff})
	if err != nil {
		b.Fatal(err)
	}
	var src [archive.HashLen]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := archive.Encode(discard{}, db, src); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestColdStartSpeedup pins the acceptance ratio: decoding the archive
// must be at least 10x faster than re-parsing the tree. Averaged over a
// few rounds with a generous margin — it catches the fast path turning
// slow, not scheduler noise.
func TestColdStartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	tree, sidecar := benchTree(t)

	const rounds = 3
	var parse, dec time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := catalog.LoadTree(tree, catalog.Options{Archive: catalog.ArchiveOff}); err != nil {
			t.Fatal(err)
		}
		parse += time.Since(start)

		start = time.Now()
		if _, err := archive.ReadFile(sidecar); err != nil {
			t.Fatal(err)
		}
		dec += time.Since(start)
	}
	if dec*10 > parse {
		t.Fatalf("archive cold start not >=10x faster: parse=%v decode=%v (%.1fx)",
			parse/rounds, dec/rounds, float64(parse)/float64(dec))
	}
	t.Logf("cold start: parse=%v decode=%v (%.1fx faster)",
		parse/rounds, dec/rounds, float64(parse)/float64(dec))
}
