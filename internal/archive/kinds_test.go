package archive

// The optional kinds section: non-TLS ecosystem kinds survive the round
// trip, pure-TLS archives stay byte-for-byte what they were before the
// section existed, archives without the section (every archive written
// before it) decode with all snapshots defaulting to tls, and unknown
// section IDs never break a reader.

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/testcerts"
)

func kindsFixture(t *testing.T) *store.Database {
	t.Helper()
	db := store.NewDatabase()
	date := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	add := func(provider string, kind store.Kind, n int) {
		snap := store.NewSnapshot(provider, "2021-03-01", date)
		snap.Kind = kind
		for _, e := range testcerts.Entries(n, store.ServerAuth) {
			snap.Add(e.Clone())
		}
		if err := db.AddSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	add("NSS", "", 4) // zero value = tls
	add("CT-Argon", store.KindCT, 6)
	add("TPM-Vendors", store.KindManifest, 3)
	return db
}

func TestKindsRoundTrip(t *testing.T) {
	db := kindsFixture(t)
	data, _ := encodeToBytes(t, db)
	got, err := decodeBytes(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := Equal(db, got); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	want := map[string]store.Kind{"NSS": store.KindTLS, "CT-Argon": store.KindCT, "TPM-Vendors": store.KindManifest}
	for prov, kind := range want {
		snap := got.History(prov).Latest()
		if snap.Kind.Normalize() != kind {
			t.Errorf("%s: kind %q, want %q", prov, snap.Kind, kind)
		}
	}
	// The mixed database carries the kinds section.
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.section(sectionKinds); err != nil {
		t.Errorf("kinds section missing from mixed-kind archive: %v", err)
	}
}

func TestPureTLSArchiveHasNoKindsSection(t *testing.T) {
	// A database whose snapshots are all tls — whether by zero value or
	// explicitly — must encode to the historical 3-section layout, so
	// content hashes (ETags, sidecar identity) are unchanged by the kinds
	// feature.
	db := store.NewDatabase()
	explicit := store.NewDatabase()
	for i, prov := range []string{"NSS", "Debian"} {
		for _, target := range []*store.Database{db, explicit} {
			snap := store.NewSnapshot(prov, "v1", time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
			if target == explicit {
				snap.Kind = store.KindTLS
			}
			for _, e := range testcerts.Entries(3+i, store.ServerAuth) {
				snap.Add(e.Clone())
			}
			if err := target.AddSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	data, hash := encodeToBytes(t, db)
	dataExplicit, hashExplicit := encodeToBytes(t, explicit)
	if hash != hashExplicit || !bytes.Equal(data, dataExplicit) {
		t.Fatal("explicit tls kind changed the encoding of a pure-TLS database")
	}
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.sections) != 3 {
		t.Fatalf("pure-TLS archive has %d sections, want 3", len(r.sections))
	}
	// Legacy decode path: no kinds section → every snapshot is tls.
	got, err := r.Database()
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range got.AllSnapshots() {
		if snap.Kind.Normalize() != store.KindTLS {
			t.Errorf("%s: kind %q from archive without kinds section", snap.Key(), snap.Kind)
		}
	}
}

// encodeWithExtraSection replicates Encode's layout with an arbitrary
// extra section appended — a stand-in for an archive written by a future
// version that knows sections this reader does not.
func encodeWithExtraSection(t *testing.T, db *store.Database, extraID uint32, extraData []byte) []byte {
	t.Helper()
	var inner bytes.Buffer
	if _, err := Encode(&inner, db, [HashLen]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(inner.Bytes()), int64(inner.Len()))
	if err != nil {
		t.Fatal(err)
	}

	var out enc
	out.buf = append(out.buf, magic...)
	out.u32(formatVersion)
	type sec struct {
		id   uint32
		data []byte
	}
	var secs []sec
	for _, m := range r.sections {
		data := inner.Bytes()[m.offset : m.offset+m.length]
		secs = append(secs, sec{m.id, data})
	}
	secs = append(secs, sec{extraID, extraData})

	var table enc
	table.u32(uint32(len(secs)))
	for _, s := range secs {
		sum := sha256.Sum256(s.data)
		table.u32(s.id)
		table.u64(uint64(len(out.buf)))
		table.u64(uint64(len(s.data)))
		table.buf = append(table.buf, sum[:]...)
		out.buf = append(out.buf, s.data...)
	}
	src := [HashLen]byte{1, 2, 3}
	table.buf = append(table.buf, src[:]...)
	footerLen := len(table.buf) + HashLen + 8 + 4
	out.buf = append(out.buf, table.buf...)

	contentHash := sha256.Sum256(out.buf)
	out.buf = append(out.buf, contentHash[:]...)
	out.u64(uint64(footerLen))
	out.buf = append(out.buf, trailerMagic...)
	return out.buf
}

func TestUnknownSectionTolerated(t *testing.T) {
	db := kindsFixture(t)
	data := encodeWithExtraSection(t, db, 99, []byte("future payload"))
	got, err := decodeBytes(data)
	if err != nil {
		t.Fatalf("decode with unknown section: %v", err)
	}
	if err := Equal(db, got); err != nil {
		t.Fatalf("unknown section changed the decoded database: %v", err)
	}
}

func TestKindsSectionInconsistencyIsCorrupt(t *testing.T) {
	// A pure-TLS database normally has no kinds section; injecting one
	// that disagrees with the snapshot section must be corruption, not a
	// silent partial application.
	db := store.NewDatabase()
	snap := store.NewSnapshot("NSS", "v1", time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	for _, e := range testcerts.Entries(2, store.ServerAuth) {
		snap.Add(e.Clone())
	}
	if err := db.AddSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(e *enc){
		"wrong provider count": func(e *enc) {
			e.uvarint(0)
		},
		"wrong snapshot count": func(e *enc) {
			e.uvarint(1)
			e.str("NSS")
			e.uvarint(2)
			e.str("tls")
			e.str("ct")
		},
		"unknown kind": func(e *enc) {
			e.uvarint(1)
			e.str("NSS")
			e.uvarint(1)
			e.str("quantum")
		},
		"duplicate provider": func(e *enc) {
			e.uvarint(2)
			e.str("NSS")
			e.uvarint(1)
			e.str("ct")
			e.str("NSS")
			e.uvarint(1)
			e.str("ct")
		},
		"trailing bytes": func(e *enc) {
			e.uvarint(1)
			e.str("NSS")
			e.uvarint(1)
			e.str("ct")
			e.buf = append(e.buf, 0xFF)
		},
	}
	for name, build := range cases {
		var e enc
		build(&e)
		data := encodeWithExtraSection(t, db, sectionKinds, e.buf)
		_, err := decodeBytes(data)
		if err == nil {
			t.Errorf("%s: decoded successfully", name)
			continue
		}
		if !IsCorrupt(err) {
			t.Errorf("%s: error not marked corrupt: %v", name, err)
		}
	}

	// And a well-formed injected section applies cleanly (the reader does
	// not care that the writer would have omitted it).
	var e enc
	e.uvarint(1)
	e.str("NSS")
	e.uvarint(1)
	e.str("ct")
	got, err := decodeBytes(encodeWithExtraSection(t, db, sectionKinds, e.buf))
	if err != nil {
		t.Fatalf("well-formed injected kinds: %v", err)
	}
	if k := got.History("NSS").Latest().Kind; k != store.KindCT {
		t.Errorf("injected kind = %q, want ct", k)
	}
}

func TestEqualDetectsKindMismatch(t *testing.T) {
	a := kindsFixture(t)
	b := kindsFixture(t)
	if err := Equal(a, b); err != nil {
		t.Fatalf("identical databases unequal: %v", err)
	}
	b.History("CT-Argon").Latest().Kind = store.KindManifest
	if Equal(a, b) == nil {
		t.Error("kind difference not detected")
	}
	// tls and the zero value are the same kind.
	c := kindsFixture(t)
	c.History("NSS").Latest().Kind = store.KindTLS
	if err := Equal(a, c); err != nil {
		t.Errorf("zero-vs-explicit tls reported unequal: %v", err)
	}
}

func TestVerifyWithKinds(t *testing.T) {
	db := kindsFixture(t)
	var buf bytes.Buffer
	if _, err := Encode(&buf, db, [HashLen]byte{5}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}
