package archive

// Context-aware entry points. The archive layer's two heavy operations —
// compiling a database into a rootpack and decoding one back — are span
// boundaries in the ingestion traces; the ctx-less originals delegate
// here and stay span-free, so nothing changes for existing callers.

import (
	"context"
	"strconv"

	"repro/internal/obs"
	"repro/internal/store"
)

// WriteFileCtx is WriteFile wrapped in an "archive.compile" span carrying
// the snapshot count and output size.
func WriteFileCtx(ctx context.Context, path string, db *store.Database, sourceHash [HashLen]byte) ([HashLen]byte, error) {
	_, span := obs.StartSpan(ctx, "archive.compile")
	defer span.End()
	span.SetAttr("snapshots", strconv.Itoa(db.TotalSnapshots()))
	hash, err := WriteFile(path, db, sourceHash)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return hash, err
}

// DatabaseCtx is Database wrapped in an "archive.decode" span carrying
// the archive's size and unique-cert count.
func (r *Reader) DatabaseCtx(ctx context.Context) (*store.Database, error) {
	_, span := obs.StartSpan(ctx, "archive.decode")
	defer span.End()
	span.SetAttr("bytes", strconv.FormatInt(r.size, 10))
	db, _, err := r.decode()
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return db, err
}
