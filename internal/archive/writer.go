package archive

// The rootpack writer: compiles a store.Database into the deterministic
// archive layout described in the package comment.

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bitset"
	"repro/internal/certutil"
	"repro/internal/store"
)

// trustPlanes are the per-purpose trust levels each snapshot serializes a
// bitset for, in wire order. Unspecified is the implicit complement
// (member of the snapshot, in no plane).
var trustPlanes = []store.TrustLevel{store.Trusted, store.MustVerify, store.Distrusted}

// Encode writes db as a rootpack to w and returns the archive's content
// hash. sourceHash identifies the source the database was compiled from
// (catalog.TreeHash for on-disk trees; zero when unknown) and is stored in
// the footer for staleness checks. Encoding is deterministic: semantically
// equal databases yield byte-identical archives.
func Encode(w io.Writer, db *store.Database, sourceHash [HashLen]byte) ([HashLen]byte, error) {
	var zero [HashLen]byte
	pool, ids, err := buildPool(db)
	if err != nil {
		return zero, err
	}

	sections := []struct {
		id   uint32
		data []byte
	}{
		{sectionCertPool, encodePool(pool)},
		{sectionFingerprints, encodeFingerprints(pool)},
		{sectionSnapshots, encodeSnapshots(db, ids)},
	}
	if kinds := encodeKinds(db); kinds != nil {
		sections = append(sections, struct {
			id   uint32
			data []byte
		}{sectionKinds, kinds})
	}

	h := sha256.New()
	tee := &countingTee{w: w, h: h}

	var hdr enc
	hdr.buf = append(hdr.buf, magic...)
	hdr.u32(formatVersion)
	if _, err := tee.Write(hdr.buf); err != nil {
		return zero, err
	}

	var table enc
	table.u32(uint32(len(sections)))
	for _, s := range sections {
		sum := sha256.Sum256(s.data)
		table.u32(s.id)
		table.u64(uint64(tee.n))
		table.u64(uint64(len(s.data)))
		table.buf = append(table.buf, sum[:]...)
		if _, err := tee.Write(s.data); err != nil {
			return zero, err
		}
	}
	table.buf = append(table.buf, sourceHash[:]...)
	footerLen := len(table.buf) + HashLen + 8 + 4
	if _, err := tee.Write(table.buf); err != nil {
		return zero, err
	}

	var contentHash [HashLen]byte
	h.Sum(contentHash[:0])

	var trailer enc
	trailer.buf = append(trailer.buf, contentHash[:]...)
	trailer.u64(uint64(footerLen))
	trailer.buf = append(trailer.buf, trailerMagic...)
	if _, err := w.Write(trailer.buf); err != nil {
		return zero, err
	}
	return contentHash, nil
}

// WriteFile encodes db to path atomically (temp file + rename in the same
// directory) and returns the content hash.
func WriteFile(path string, db *store.Database, sourceHash [HashLen]byte) ([HashLen]byte, error) {
	var zero [HashLen]byte
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return zero, fmt.Errorf("archive: %w", err)
	}
	defer os.Remove(tmp.Name())
	contentHash, err := Encode(tmp, db, sourceHash)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return zero, fmt.Errorf("archive: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return zero, fmt.Errorf("archive: %w", err)
	}
	return contentHash, nil
}

// HashDatabase returns the content hash db would encode to — the
// deterministic identity the serving layer uses as its ETag and the
// catalog compares sidecars by, computed without materializing the
// archive anywhere.
func HashDatabase(db *store.Database) ([HashLen]byte, error) {
	return Encode(io.Discard, db, [HashLen]byte{})
}

// poolEntry is one distinct certificate in pool (= interner ID) order.
type poolEntry struct {
	fp  certutil.Fingerprint
	der []byte
}

// buildPool collects the deduped, fingerprint-sorted cert universe and the
// fingerprint → dense ID map the snapshot section indexes by.
func buildPool(db *store.Database) ([]poolEntry, map[certutil.Fingerprint]uint32, error) {
	byFP := make(map[certutil.Fingerprint][]byte)
	for _, snap := range db.AllSnapshots() {
		for _, e := range snap.Entries() {
			if _, ok := byFP[e.Fingerprint]; ok {
				continue
			}
			if got := certutil.SHA256Fingerprint(e.DER); got != e.Fingerprint {
				return nil, nil, fmt.Errorf("archive: entry %s in %s has DER hashing to %s",
					e.Fingerprint.Short(), snap.Key(), got.Short())
			}
			byFP[e.Fingerprint] = e.DER
		}
	}
	pool := make([]poolEntry, 0, len(byFP))
	for fp, der := range byFP {
		pool = append(pool, poolEntry{fp: fp, der: der})
	}
	sort.Slice(pool, func(i, j int) bool { return fingerprintLess(pool[i].fp, pool[j].fp) })
	ids := make(map[certutil.Fingerprint]uint32, len(pool))
	for i, p := range pool {
		ids[p.fp] = uint32(i)
	}
	return pool, ids, nil
}

func encodePool(pool []poolEntry) []byte {
	var e enc
	e.uvarint(uint64(len(pool)))
	for _, p := range pool {
		e.blob(p.der)
	}
	return e.buf
}

func encodeFingerprints(pool []poolEntry) []byte {
	var e enc
	e.uvarint(uint64(len(pool)))
	for _, p := range pool {
		e.buf = append(e.buf, p.fp[:]...)
	}
	return e.buf
}

func encodeSnapshots(db *store.Database, ids map[certutil.Fingerprint]uint32) []byte {
	var e enc
	providers := db.Providers()
	e.uvarint(uint64(len(providers)))
	for _, name := range providers {
		snaps := db.History(name).Snapshots()
		e.str(name)
		e.uvarint(uint64(len(snaps)))
		for _, snap := range snaps {
			encodeSnapshot(&e, snap, ids)
		}
	}
	return e.buf
}

func encodeSnapshot(e *enc, snap *store.Snapshot, ids map[certutil.Fingerprint]uint32) {
	e.str(snap.Version)
	e.instant(snap.Date)

	// Entries() sorts by fingerprint and the pool assigns IDs in that same
	// order, so iterating entries is iterating ascending IDs — labels and
	// bitset members line up by construction.
	entries := snap.Entries()
	member := bitset.New(len(ids))
	for _, en := range entries {
		member.Add(ids[en.Fingerprint])
	}
	e.words(member.Words())
	e.uvarint(uint64(len(entries)))
	for _, en := range entries {
		e.str(en.Label)
	}

	for _, p := range store.AllPurposes {
		for _, level := range trustPlanes {
			plane := bitset.New(len(ids))
			for _, en := range entries {
				if en.TrustFor(p) == level {
					plane.Add(ids[en.Fingerprint])
				}
			}
			e.words(plane.Words())
		}
	}

	for _, p := range store.AllPurposes {
		var n uint64
		for _, en := range entries {
			if _, ok := en.DistrustAfterFor(p); ok {
				n++
			}
		}
		e.uvarint(n)
		for _, en := range entries {
			if cutoff, ok := en.DistrustAfterFor(p); ok {
				e.uvarint(uint64(ids[en.Fingerprint]))
				e.instant(cutoff)
			}
		}
	}
}

// encodeKinds serializes the per-snapshot ecosystem kinds, mirroring the
// snapshot section's (sorted provider, date-ordered snapshot) walk. It
// returns nil when every snapshot is KindTLS: the section is omitted
// entirely so pure-TLS databases keep producing the exact archives (and
// content hashes) they did before kinds existed.
func encodeKinds(db *store.Database) []byte {
	any := false
	for _, snap := range db.AllSnapshots() {
		if snap.Kind.Normalize() != store.KindTLS {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	var e enc
	providers := db.Providers()
	e.uvarint(uint64(len(providers)))
	for _, name := range providers {
		snaps := db.History(name).Snapshots()
		e.str(name)
		e.uvarint(uint64(len(snaps)))
		for _, snap := range snaps {
			e.str(string(snap.Kind.Normalize()))
		}
	}
	return e.buf
}

// countingTee forwards writes to w, feeds the running content hash, and
// tracks the byte offset for the section table.
type countingTee struct {
	w io.Writer
	h hash.Hash
	n int64
}

func (t *countingTee) Write(p []byte) (int, error) {
	t.h.Write(p)
	n, err := t.w.Write(p)
	t.n += int64(n)
	return n, err
}
