package archive

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/testcerts"
)

// randomDatabase builds a database with randomized providers, snapshot
// dates, labels, trust levels and distrust-after dates over the shared
// test roots — the generator behind the round-trip property test.
func randomDatabase(t testing.TB, rng *rand.Rand) *store.Database {
	t.Helper()
	roots := testcerts.Roots(12)
	db := store.NewDatabase()
	providers := []string{"NSS", "Microsoft", "Ápple µ", "debian-sid"}
	nProv := 1 + rng.Intn(len(providers))
	for pi := 0; pi < nProv; pi++ {
		nSnap := 1 + rng.Intn(3)
		for si := 0; si < nSnap; si++ {
			var date time.Time
			if rng.Intn(8) > 0 { // leave some snapshots with the zero date
				date = time.Date(2010+rng.Intn(12), time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
					rng.Intn(24), rng.Intn(60), rng.Intn(60), rng.Intn(1e9), time.UTC)
			}
			snap := store.NewSnapshot(providers[pi], fmt.Sprintf("v%d.%d", si, rng.Intn(100)), date)
			switch rng.Intn(5) {
			case 0:
				snap.Kind = store.KindCT
			case 1:
				snap.Kind = store.KindManifest
			case 2:
				snap.Kind = store.KindTLS // explicit tls, equal to the zero value
			}
			nEnt := 1 + rng.Intn(len(roots))
			perm := rng.Perm(len(roots))
			for _, ri := range perm[:nEnt] {
				e, err := store.NewEntry(roots[ri].DER)
				if err != nil {
					t.Fatal(err)
				}
				switch rng.Intn(4) {
				case 0:
					e.Label = ""
				case 1:
					e.Label = "ünïcode läbel ✓"
				}
				for _, p := range store.AllPurposes {
					// Includes explicit Unspecified map entries, which must
					// round-trip as semantically absent.
					if lvl := store.TrustLevel(rng.Intn(4)); rng.Intn(3) > 0 {
						e.SetTrust(p, lvl)
					}
					if rng.Intn(5) == 0 {
						e.SetDistrustAfter(p, time.Date(2019, 4, rng.Intn(28)+1, 0, 0, 0, 0, time.UTC))
					}
				}
				snap.Add(e)
			}
			if err := db.AddSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func encodeToBytes(t testing.TB, db *store.Database) ([]byte, [HashLen]byte) {
	t.Helper()
	var buf bytes.Buffer
	h, err := Encode(&buf, db, [HashLen]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), h
}

func decodeBytes(data []byte) (*store.Database, error) {
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	return r.Database()
}

func TestRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDatabase(t, rng)
		data, hash := encodeToBytes(t, db)

		got, err := decodeBytes(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if err := Equal(db, got); err != nil {
			t.Fatalf("seed %d: round-trip not lossless: %v", seed, err)
		}
		// Decoded database re-encodes to the identical bytes (canonical
		// form), and the content hash is a pure function of semantics.
		var buf2 bytes.Buffer
		hash2, err := Encode(&buf2, got, [HashLen]byte{1, 2, 3})
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if hash2 != hash || !bytes.Equal(buf2.Bytes(), data) {
			t.Fatalf("seed %d: re-encode is not byte-identical", seed)
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// Two databases built with the same content in different insertion
	// orders must hash identically.
	build := func(reverse bool) *store.Database {
		db := store.NewDatabase()
		entries := testcerts.Entries(5, store.ServerAuth, store.EmailProtection)
		order := []string{"NSS", "Debian"}
		if reverse {
			order = []string{"Debian", "NSS"}
		}
		for _, prov := range order {
			snap := store.NewSnapshot(prov, "v1", time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
			es := entries
			if reverse {
				es = append([]*store.TrustEntry(nil), entries...)
				for i, j := 0, len(es)-1; i < j; i, j = i+1, j-1 {
					es[i], es[j] = es[j], es[i]
				}
			}
			for _, e := range es {
				snap.Add(e.Clone())
			}
			if err := db.AddSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
		// Exercise the interner in a different order so the archive cannot
		// accidentally depend on runtime ID assignment.
		if reverse {
			db.Interner().ID(entries[3].Fingerprint)
		}
		return db
	}
	h1, err := HashDatabase(build(false))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashDatabase(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("semantically equal databases hash differently: %x vs %x", h1[:8], h2[:8])
	}
}

func TestWriteFileOpenVerify(t *testing.T) {
	db := randomDatabase(t, rand.New(rand.NewSource(42)))
	path := filepath.Join(t.TempDir(), "corpus.rootpack")
	src := [HashLen]byte{9, 9, 9}
	hash, err := WriteFile(path, db, src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.SourceHash() != src {
		t.Errorf("source hash %x, want %x", r.SourceHash(), src)
	}
	if r.ContentHash() != hash {
		t.Errorf("content hash %x, want %x", r.ContentHash(), hash)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	got, err := r.Database()
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(db, got); err != nil {
		t.Fatal(err)
	}

	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantSections := 3
	for _, snap := range db.AllSnapshots() {
		if snap.Kind.Normalize() != store.KindTLS {
			wantSections = 4
			break
		}
	}
	if st.UniqueCerts == 0 || st.Snapshots != db.TotalSnapshots() || len(st.Sections) != wantSections {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalEntries < st.UniqueCerts || st.DedupRatio() < 1 {
		t.Errorf("dedup ratio %f (entries %d, uniq %d)", st.DedupRatio(), st.TotalEntries, st.UniqueCerts)
	}
}

// TestInternerAlignment proves the promise the fingerprint table makes:
// IDs in a rootpack-loaded database match table order, so bitsets are
// ID-compatible with the archive.
func TestInternerAlignment(t *testing.T) {
	db := randomDatabase(t, rand.New(rand.NewSource(7)))
	data, _ := encodeToBytes(t, db)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Database()
	if err != nil {
		t.Fatal(err)
	}
	in := got.Interner()
	for id := 0; id < in.Len(); id++ {
		fp, ok := in.FingerprintOf(uint32(id))
		if !ok {
			t.Fatalf("no fingerprint for id %d", id)
		}
		if back := in.ID(fp); back != uint32(id) {
			t.Fatalf("id %d round-trips to %d", id, back)
		}
		if id > 0 {
			prev, _ := in.FingerprintOf(uint32(id - 1))
			if !fingerprintLess(prev, fp) {
				t.Fatalf("interner ids not in fingerprint order at %d", id)
			}
		}
	}
}

// TestCorruptedSectionsNeverPartiallyLoad flips a byte inside every
// section and in the footer: each mutation must be detected as corruption
// — never a silent partial load.
func TestCorruptedSectionsNeverPartiallyLoad(t *testing.T) {
	db := randomDatabase(t, rand.New(rand.NewSource(3)))
	data, _ := encodeToBytes(t, db)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := r.Database()
	if err != nil {
		t.Fatal(err)
	}

	for _, m := range r.sections {
		for _, at := range []int64{m.offset, m.offset + m.length/2, m.offset + m.length - 1} {
			mut := append([]byte(nil), data...)
			mut[at] ^= 0x40
			got, err := decodeBytes(mut)
			if err == nil {
				// A flipped byte must not yield a different database; the
				// only legal non-error outcome is... none: checksums make
				// any payload change detectable.
				t.Errorf("%s: flip at %d: decode succeeded (entries=%d, clean=%d)",
					sectionName(m.id), at, got.TotalSnapshots(), clean.TotalSnapshots())
				continue
			}
			if !IsCorrupt(err) {
				t.Errorf("%s: flip at %d: error not marked corrupt: %v", sectionName(m.id), at, err)
			}
		}
	}

	// Truncations at every interesting boundary.
	for _, n := range []int{0, 3, len(magic) + 4, len(data) / 2, len(data) - 1} {
		if _, err := decodeBytes(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}

	// Header magic and trailer mutations.
	for _, at := range []int{0, len(data) - 1, len(data) - trailerLen} {
		mut := append([]byte(nil), data...)
		mut[at] ^= 0xFF
		if _, err := decodeBytes(mut); err == nil {
			t.Errorf("flip at %d (header/trailer) decoded successfully", at)
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := func() *store.Database {
		db := store.NewDatabase()
		snap := store.NewSnapshot("NSS", "v1", time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
		for _, e := range testcerts.Entries(3, store.ServerAuth) {
			snap.Add(e.Clone())
		}
		if err := db.AddSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		return db
	}
	a := base()
	if err := Equal(a, base()); err != nil {
		t.Fatalf("identical databases unequal: %v", err)
	}

	b := base()
	b.History("NSS").Latest().Entries()[0].SetTrust(store.CodeSigning, store.Trusted)
	if Equal(a, b) == nil {
		t.Error("trust-level difference not detected")
	}

	c := base()
	c.History("NSS").Latest().Entries()[1].SetDistrustAfter(store.ServerAuth, time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC))
	if Equal(a, c) == nil {
		t.Error("distrust-after difference not detected")
	}

	d := base()
	d.History("NSS").Latest().Entries()[2].Label = "renamed"
	if Equal(a, d) == nil {
		t.Error("label difference not detected")
	}
}
