// Package archive implements the rootpack format: a deterministic,
// content-addressed binary snapshot archive that compiles a whole
// store.Database into one file a reader can reopen in milliseconds.
//
// The paper's pipeline ingests hundreds of snapshots from slow native
// formats (certdata.txt PKCS#11 text, authroot.stl ASN.1, JKS keystores,
// PEM bundles). Every process start and every watch-triggered reload used
// to re-run those parsers over the full tree. A rootpack turns that parse
// problem into an I/O problem by exploiting the paper's own dedup insight:
// most roots are shared across stores, so the certificate universe is far
// smaller than the sum of snapshots. The format therefore stores each
// distinct DER exactly once and lets every snapshot reference it by a
// dense ID.
//
// # Layout
//
//	header   magic "RPK1" + format version (u32 LE)
//	section  1: cert pool      — deduped DER blobs, sorted by SHA-256
//	section  2: fingerprints   — the 32-byte SHA-256 of pool entry i at
//	                             offset 32*i; table order IS the interner
//	                             ID order the reader reconstructs
//	section  3: snapshots      — per provider (sorted), per snapshot (date
//	                             order): version, date, membership bitset,
//	                             labels, per-(purpose, level) trust-matrix
//	                             bitsets, sparse distrust-after dates
//	section  4: kinds (optional) — per-snapshot ecosystem kind, present
//	                             only when some snapshot is non-TLS; see
//	                             sectionKinds
//	footer   section table (id, offset, length, SHA-256 each), the source
//	         tree hash, the whole-archive content hash, footer length,
//	         trailer magic "1KPR"
//
// All integers are little-endian; counts and string/blob lengths are
// unsigned varints; bitsets are serialized as their packed 64-bit words
// (internal/bitset.Words). IDs in the snapshot section index the cert
// pool, which is exactly the interner ID space of the reconstructed
// database: the reader pre-interns the fingerprint table in order, so
// bitsets computed over a rootpack-loaded database are ID-compatible with
// the table.
//
// # Determinism and integrity
//
// Encoding is a pure function of the database's semantic content (sorted
// providers, date-ordered histories, fingerprint-sorted entries, trust
// levels, distrust-after instants, labels): semantically equal databases
// produce byte-identical archives, which makes the footer's content hash a
// usable cache key (catalog sidecars, HTTP ETags). Every section carries
// its own SHA-256; the reader refuses to materialize anything from a
// section whose checksum fails — a stale or torn archive is detected,
// never trusted, and never partially loaded.
//
// The reader is lazy: Open reads only the fixed-size trailer and footer
// (microseconds on any archive), and sections are fetched and verified on
// first use. Database parses each distinct certificate once and shares the
// *x509.Certificate and DER across every snapshot that references it.
package archive

import (
	"fmt"

	"repro/internal/certutil"
)

// Format constants. Bump formatVersion on any wire change; readers reject
// versions they do not understand rather than guessing.
const (
	magic         = "RPK1"
	trailerMagic  = "1KPR"
	formatVersion = 1

	sectionCertPool     = 1
	sectionFingerprints = 2
	sectionSnapshots    = 3
	// sectionKinds carries each snapshot's ecosystem kind (tls | ct |
	// manifest), parallel to the snapshot section's (provider, snapshot)
	// order. It is OPTIONAL on both sides: the writer emits it only when
	// some snapshot has a non-TLS kind — so a pure-TLS database encodes to
	// the exact bytes it always has (same content hash, same ETag) — and a
	// reader that meets an archive without it defaults every snapshot to
	// KindTLS. Readers tolerate section IDs they do not know, which is what
	// lets archives written before this section existed keep loading.
	sectionKinds = 4
)

// HashLen is the byte length of every checksum and content hash in the
// format (SHA-256).
const HashLen = 32

// sectionName renders a section ID for inspect output and errors.
func sectionName(id uint32) string {
	switch id {
	case sectionCertPool:
		return "cert-pool"
	case sectionFingerprints:
		return "fingerprints"
	case sectionSnapshots:
		return "snapshots"
	case sectionKinds:
		return "kinds"
	}
	return fmt.Sprintf("section-%d", id)
}

// SectionInfo describes one section for Stats and `rootpack inspect`.
type SectionInfo struct {
	ID     uint32 `json:"id"`
	Name   string `json:"name"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	SHA256 string `json:"sha256"`
}

// ProviderStats is one provider's row in Stats.
type ProviderStats struct {
	Name      string `json:"name"`
	Snapshots int    `json:"snapshots"`
	Entries   int    `json:"entries"`
}

// Stats summarizes an archive: what `rootpack inspect` prints.
type Stats struct {
	FormatVersion uint32          `json:"format_version"`
	FileSize      int64           `json:"file_size"`
	Sections      []SectionInfo   `json:"sections"`
	UniqueCerts   int             `json:"unique_certs"`
	PoolBytes     int64           `json:"pool_bytes"`
	TotalEntries  int             `json:"total_entries"`
	Snapshots     int             `json:"snapshots"`
	Providers     []ProviderStats `json:"providers"`
	SourceHash    string          `json:"source_hash"`
	ContentHash   string          `json:"content_hash"`
}

// DedupRatio is total trust entries per distinct certificate — the factor
// by which content addressing shrinks the cert payload.
func (s *Stats) DedupRatio() float64 {
	if s.UniqueCerts == 0 {
		return 0
	}
	return float64(s.TotalEntries) / float64(s.UniqueCerts)
}

// corruptError marks integrity failures (bad magic, checksum mismatch,
// malformed section) as opposed to I/O errors.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return "archive: corrupt: " + e.msg }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}

// IsCorrupt reports whether err marks a damaged or inconsistent archive
// (as opposed to an I/O failure). Callers use it to fall back to native
// parsing instead of surfacing a broken sidecar as a hard error.
func IsCorrupt(err error) bool {
	for err != nil {
		if _, ok := err.(*corruptError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// fingerprintLess orders fingerprints bytewise — the pool and table order.
func fingerprintLess(a, b certutil.Fingerprint) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
