package archive

// The rootpack reader. Open is lazy — it reads only the trailer and
// footer; sections are fetched and checksum-verified on first use, and
// Database materializes a fully equivalent store.Database without touching
// any native parser.

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bitset"
	"repro/internal/certutil"
	"repro/internal/store"
)

// trailerLen is the fixed tail every archive ends with: footer length
// (u64) + trailer magic.
const trailerLen = 8 + 4

type sectionMeta struct {
	id     uint32
	offset int64
	length int64
	sum    [HashLen]byte
}

// Reader is an open archive. It is safe for concurrent use once opened
// (reads are stateless ReadAt calls).
type Reader struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer

	version     uint32
	sections    []sectionMeta
	sourceHash  [HashLen]byte
	contentHash [HashLen]byte
}

// Open opens the archive file and verifies its footer. Section payloads
// are not read until requested.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: %w", err)
	}
	r, err := NewReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens an archive from any random-access byte source.
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	r := &Reader{r: ra, size: size}
	if err := r.readFooter(); err != nil {
		return nil, err
	}
	return r, nil
}

// Close releases the underlying file (no-op for NewReader sources).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// SourceHash returns the hash of the source tree the archive was compiled
// from (zero when the builder did not record one).
func (r *Reader) SourceHash() [HashLen]byte { return r.sourceHash }

// ContentHash returns the archive's own content hash from the footer.
func (r *Reader) ContentHash() [HashLen]byte { return r.contentHash }

// Version returns the archive's format version.
func (r *Reader) Version() uint32 { return r.version }

func (r *Reader) readFooter() error {
	if r.size < int64(len(magic))+4+trailerLen {
		return corruptf("file too small (%d bytes)", r.size)
	}
	tail := make([]byte, trailerLen)
	if _, err := r.r.ReadAt(tail, r.size-trailerLen); err != nil {
		return fmt.Errorf("archive: read trailer: %w", err)
	}
	if string(tail[8:]) != trailerMagic {
		return corruptf("bad trailer magic %q", tail[8:])
	}
	footerLen := int64(binary.LittleEndian.Uint64(tail[:8]))
	if footerLen < trailerLen || footerLen > r.size-int64(len(magic))-4 {
		return corruptf("implausible footer length %d", footerLen)
	}

	head := make([]byte, len(magic)+4)
	if _, err := r.r.ReadAt(head, 0); err != nil {
		return fmt.Errorf("archive: read header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return corruptf("bad magic %q", head[:len(magic)])
	}
	r.version = binary.LittleEndian.Uint32(head[len(magic):])
	if r.version != formatVersion {
		return corruptf("unsupported format version %d (want %d)", r.version, formatVersion)
	}

	foot := make([]byte, footerLen-trailerLen)
	footStart := r.size - footerLen
	if _, err := r.r.ReadAt(foot, footStart); err != nil {
		return fmt.Errorf("archive: read footer: %w", err)
	}
	d := &dec{buf: foot}
	n := int(d.u32())
	if d.err == nil && n*(4+8+8+HashLen) > d.remaining() {
		return corruptf("section count %d exceeds footer size", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		var m sectionMeta
		m.id = d.u32()
		m.offset = int64(d.u64())
		m.length = int64(d.u64())
		copy(m.sum[:], d.take(HashLen))
		if d.err != nil {
			break
		}
		if m.offset < int64(len(magic)+4) || m.length < 0 || m.offset+m.length > footStart {
			return corruptf("%s extends outside file (offset %d, length %d)", sectionName(m.id), m.offset, m.length)
		}
		r.sections = append(r.sections, m)
	}
	copy(r.sourceHash[:], d.take(HashLen))
	copy(r.contentHash[:], d.take(HashLen))
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return corruptf("%d trailing bytes in footer", d.remaining())
	}
	for _, want := range []uint32{sectionCertPool, sectionFingerprints, sectionSnapshots} {
		if _, err := r.section(want); err != nil {
			return err
		}
	}
	return nil
}

func (r *Reader) section(id uint32) (sectionMeta, error) {
	for _, m := range r.sections {
		if m.id == id {
			return m, nil
		}
	}
	return sectionMeta{}, corruptf("missing %s section", sectionName(id))
}

// loadSection reads and checksum-verifies one section's payload.
func (r *Reader) loadSection(id uint32) ([]byte, error) {
	m, err := r.section(id)
	if err != nil {
		return nil, err
	}
	data := make([]byte, m.length)
	if _, err := r.r.ReadAt(data, m.offset); err != nil {
		return nil, fmt.Errorf("archive: read %s: %w", sectionName(id), err)
	}
	if sum := sha256.Sum256(data); sum != m.sum {
		return nil, corruptf("%s checksum mismatch", sectionName(id))
	}
	return data, nil
}

// pool is the decoded cert universe: DER, parsed certificate and
// fingerprint per dense ID.
type pool struct {
	ders  [][]byte
	certs []*x509.Certificate
	fps   []certutil.Fingerprint
	bytes int64
}

func (r *Reader) loadPool() (*pool, error) {
	poolData, err := r.loadSection(sectionCertPool)
	if err != nil {
		return nil, err
	}
	fpData, err := r.loadSection(sectionFingerprints)
	if err != nil {
		return nil, err
	}

	fd := &dec{buf: fpData}
	nfp := fd.count(HashLen)
	fps := make([]certutil.Fingerprint, nfp)
	for i := range fps {
		copy(fps[i][:], fd.take(HashLen))
	}
	if fd.err != nil {
		return nil, fd.err
	}
	if fd.remaining() != 0 {
		return nil, corruptf("%d trailing bytes in fingerprint table", fd.remaining())
	}

	pd := &dec{buf: poolData}
	n := pd.count(1)
	if pd.err != nil {
		return nil, pd.err
	}
	if n != nfp {
		return nil, corruptf("cert pool holds %d certs but fingerprint table %d", n, nfp)
	}
	p := &pool{
		ders:  make([][]byte, n),
		certs: make([]*x509.Certificate, n),
		fps:   fps,
		bytes: int64(len(poolData)),
	}
	var prev certutil.Fingerprint
	for i := 0; i < n; i++ {
		der := pd.blob()
		if pd.err != nil {
			return nil, pd.err
		}
		// The fingerprint table is the ground truth the content address
		// promises: recomputing each digest verifies every DER byte.
		if got := certutil.SHA256Fingerprint(der); got != fps[i] {
			return nil, corruptf("cert %d hashes to %s, table says %s", i, got.Short(), fps[i].Short())
		}
		if i > 0 && !fingerprintLess(prev, fps[i]) {
			return nil, corruptf("cert pool not sorted at index %d", i)
		}
		prev = fps[i]
		cert, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, corruptf("cert %d (%s): %v", i, fps[i].Short(), err)
		}
		p.ders[i] = der
		p.certs[i] = cert
	}
	if pd.remaining() != 0 {
		return nil, corruptf("%d trailing bytes in cert pool", pd.remaining())
	}
	return p, nil
}

// Database materializes the archived database: every snapshot, entry,
// trust level, label and distrust-after date, with each distinct
// certificate parsed once and shared. The database's interner is
// pre-populated in fingerprint-table order, so IDs match the archive's.
func (r *Reader) Database() (*store.Database, error) {
	db, _, err := r.decode()
	return db, err
}

// Stats decodes the archive's inventory: section sizes, dedup ratio,
// per-provider counts.
func (r *Reader) Stats() (*Stats, error) {
	_, st, err := r.decode()
	return st, err
}

func (r *Reader) decode() (*store.Database, *Stats, error) {
	p, err := r.loadPool()
	if err != nil {
		return nil, nil, err
	}
	snapData, err := r.loadSection(sectionSnapshots)
	if err != nil {
		return nil, nil, err
	}
	kinds, err := r.loadKinds()
	if err != nil {
		return nil, nil, err
	}

	st := &Stats{
		FormatVersion: r.version,
		FileSize:      r.size,
		UniqueCerts:   len(p.ders),
		PoolBytes:     p.bytes,
		SourceHash:    hex.EncodeToString(r.sourceHash[:]),
		ContentHash:   hex.EncodeToString(r.contentHash[:]),
	}
	for _, m := range r.sections {
		st.Sections = append(st.Sections, SectionInfo{
			ID:     m.id,
			Name:   sectionName(m.id),
			Offset: m.offset,
			Length: m.length,
			SHA256: hex.EncodeToString(m.sum[:]),
		})
	}
	sort.Slice(st.Sections, func(i, j int) bool { return st.Sections[i].ID < st.Sections[j].ID })

	db := store.NewDatabase()
	in := db.Interner()
	for _, fp := range p.fps {
		in.ID(fp)
	}

	d := &dec{buf: snapData}
	nProv := d.count(1)
	if kinds != nil && len(kinds) != nProv {
		return nil, nil, corruptf("kinds section lists %d providers, snapshot section has %d", len(kinds), nProv)
	}
	var prevName string
	for pi := 0; pi < nProv && d.err == nil; pi++ {
		name := d.str()
		if pi > 0 && name <= prevName {
			d.fail(corruptf("providers not sorted at %q", name))
			break
		}
		prevName = name
		nSnap := d.count(1)
		ps := ProviderStats{Name: name, Snapshots: nSnap}
		provKinds := kinds[name]
		if kinds != nil && len(provKinds) != nSnap {
			return nil, nil, corruptf("kinds section lists %d snapshots for %q, snapshot section has %d", len(provKinds), name, nSnap)
		}
		for si := 0; si < nSnap && d.err == nil; si++ {
			snap, entries := decodeSnapshot(d, name, p)
			if d.err != nil {
				break
			}
			if provKinds != nil {
				snap.Kind = provKinds[si]
			}
			ps.Entries += entries
			st.TotalEntries += entries
			st.Snapshots++
			if err := db.AddSnapshot(snap); err != nil {
				return nil, nil, fmt.Errorf("archive: %w", err)
			}
		}
		st.Providers = append(st.Providers, ps)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.remaining() != 0 {
		return nil, nil, corruptf("%d trailing bytes in snapshot section", d.remaining())
	}
	return db, st, nil
}

// loadKinds decodes the optional kinds section into provider → per-snapshot
// kinds. A nil map (section absent — every archive written before the
// section existed) means all snapshots default to KindTLS.
func (r *Reader) loadKinds() (map[string][]store.Kind, error) {
	if _, err := r.section(sectionKinds); err != nil {
		return nil, nil // optional: absent is the all-TLS legacy layout
	}
	data, err := r.loadSection(sectionKinds)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: data}
	nProv := d.count(1)
	kinds := make(map[string][]store.Kind, nProv)
	for pi := 0; pi < nProv && d.err == nil; pi++ {
		name := d.str()
		nSnap := d.count(1)
		ks := make([]store.Kind, 0, nSnap)
		for si := 0; si < nSnap && d.err == nil; si++ {
			k, err := store.ParseKind(d.str())
			if d.err == nil && err != nil {
				d.fail(corruptf("kinds section: %v", err))
			}
			ks = append(ks, k)
		}
		if _, dup := kinds[name]; dup {
			d.fail(corruptf("kinds section repeats provider %q", name))
		}
		kinds[name] = ks
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, corruptf("%d trailing bytes in kinds section", d.remaining())
	}
	return kinds, nil
}

func decodeSnapshot(d *dec, provider string, p *pool) (*store.Snapshot, int) {
	version := d.str()
	date := d.instant()
	member := bitset.FromWords(d.words())
	nLabels := d.count(1)
	if d.err != nil {
		return nil, 0
	}
	ids := member.IDs()
	if len(ids) != nLabels {
		d.fail(corruptf("%s@%s: %d members but %d labels", provider, version, len(ids), nLabels))
		return nil, 0
	}

	snap := store.NewSnapshot(provider, version, date)
	entries := make([]*store.TrustEntry, len(ids))
	index := make(map[uint32]int, len(ids))
	for i, id := range ids {
		if int(id) >= len(p.ders) {
			d.fail(corruptf("%s@%s: member id %d outside cert pool", provider, version, id))
			return nil, 0
		}
		entries[i] = &store.TrustEntry{
			DER:         p.ders[id],
			Cert:        p.certs[id],
			Fingerprint: p.fps[id],
			Label:       d.str(),
			Trust:       make(map[store.Purpose]store.TrustLevel),
		}
		index[id] = i
	}

	for _, purpose := range store.AllPurposes {
		for _, level := range trustPlanes {
			plane := bitset.FromWords(d.words())
			if d.err != nil {
				return nil, 0
			}
			for _, id := range plane.IDs() {
				i, ok := index[id]
				if !ok {
					d.fail(corruptf("%s@%s: %s/%s plane id %d is not a member", provider, version, purpose, level, id))
					return nil, 0
				}
				entries[i].Trust[purpose] = level
			}
		}
	}

	for _, purpose := range store.AllPurposes {
		n := d.count(1)
		for j := 0; j < n && d.err == nil; j++ {
			id := uint32(d.uvarint())
			cutoff := d.instant()
			i, ok := index[id]
			if !ok {
				d.fail(corruptf("%s@%s: distrust-after id %d is not a member", provider, version, id))
				return nil, 0
			}
			entries[i].SetDistrustAfter(purpose, cutoff)
		}
	}
	if d.err != nil {
		return nil, 0
	}
	for _, e := range entries {
		snap.Add(e)
	}
	return snap, len(entries)
}

// ReadFile opens path and materializes its database in one call — the
// cold-start entry point cmd/trustd's -archive flag uses.
func ReadFile(path string) (*store.Database, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Database()
}

// VerifyContentHash recomputes the whole-archive content hash from the
// underlying bytes and demands it match the footer's recorded hash. This
// is the cheap damage check a replica runs on a freshly downloaded blob
// before decoding it: any flipped or missing byte anywhere in the file —
// including a truncation that still leaves a parseable footer — moves the
// hash. It does not prove canonical encoding; Verify does.
func (r *Reader) VerifyContentHash() error {
	// Whole-content hash: everything before the content hash field itself.
	hashed := r.size - trailerLen - HashLen
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(r.r, 0, hashed)); err != nil {
		return fmt.Errorf("archive: verify: %w", err)
	}
	var got [HashLen]byte
	h.Sum(got[:0])
	if got != r.contentHash {
		return corruptf("content hash mismatch: file hashes to %x, footer says %x", got[:8], r.contentHash[:8])
	}
	return nil
}

// Verify runs the full integrity audit `rootpack verify` performs:
// recompute the whole-archive content hash, checksum every section, decode
// the database, re-encode it, and demand the bytes round-trip to the same
// content hash — proving the archive is both undamaged and canonical.
func (r *Reader) Verify() error {
	if err := r.VerifyContentHash(); err != nil {
		return err
	}
	db, err := r.Database()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	reHash, err := Encode(&buf, db, r.sourceHash)
	if err != nil {
		return fmt.Errorf("archive: verify re-encode: %w", err)
	}
	if reHash != r.contentHash {
		return corruptf("round-trip re-encode hashes to %x, archive is %x (non-canonical encoding)", reHash[:8], r.contentHash[:8])
	}
	return nil
}

// Equal reports whether two databases are semantically identical — same
// providers, snapshots (provider, version, date instant, normalized
// ecosystem kind), entries (DER,
// label, per-purpose trust levels and distrust-after instants). It returns
// nil when equal and a description of the first difference otherwise. This
// is the property the archive round-trip tests and `rootpack verify`
// assert.
func Equal(a, b *store.Database) error {
	ap, bp := a.Providers(), b.Providers()
	if len(ap) != len(bp) {
		return fmt.Errorf("provider count %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return fmt.Errorf("provider %q vs %q", ap[i], bp[i])
		}
		as, bs := a.History(ap[i]).Snapshots(), b.History(bp[i]).Snapshots()
		if len(as) != len(bs) {
			return fmt.Errorf("%s: %d snapshots vs %d", ap[i], len(as), len(bs))
		}
		for j := range as {
			if err := equalSnapshot(as[j], bs[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

func equalSnapshot(a, b *store.Snapshot) error {
	if a.Provider != b.Provider || a.Version != b.Version || !a.Date.Equal(b.Date) {
		return fmt.Errorf("snapshot %s vs %s", a.Key(), b.Key())
	}
	if a.Kind.Normalize() != b.Kind.Normalize() {
		return fmt.Errorf("%s: kind %s vs %s", a.Key(), a.Kind.Normalize(), b.Kind.Normalize())
	}
	ae, be := a.Entries(), b.Entries()
	if len(ae) != len(be) {
		return fmt.Errorf("%s: %d entries vs %d", a.Key(), len(ae), len(be))
	}
	for i := range ae {
		x, y := ae[i], be[i]
		if x.Fingerprint != y.Fingerprint {
			return fmt.Errorf("%s: entry %d fingerprint %s vs %s", a.Key(), i, x.Fingerprint.Short(), y.Fingerprint.Short())
		}
		if !bytes.Equal(x.DER, y.DER) {
			return fmt.Errorf("%s: entry %s DER differs", a.Key(), x.Fingerprint.Short())
		}
		if x.Label != y.Label {
			return fmt.Errorf("%s: entry %s label %q vs %q", a.Key(), x.Fingerprint.Short(), x.Label, y.Label)
		}
		for _, p := range store.AllPurposes {
			if x.TrustFor(p) != y.TrustFor(p) {
				return fmt.Errorf("%s: entry %s %s trust %s vs %s", a.Key(), x.Fingerprint.Short(), p, x.TrustFor(p), y.TrustFor(p))
			}
			xc, xok := x.DistrustAfterFor(p)
			yc, yok := y.DistrustAfterFor(p)
			if xok != yok || (xok && !xc.Equal(yc)) {
				return fmt.Errorf("%s: entry %s %s distrust-after %v/%v vs %v/%v", a.Key(), x.Fingerprint.Short(), p, xc, xok, yc, yok)
			}
		}
	}
	return nil
}
