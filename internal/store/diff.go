package store

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/certutil"
)

// TrustChange records a trust-metadata change for a certificate present in
// both snapshots — e.g. NSS applying server-distrust-after to a Symantec
// root without removing it.
type TrustChange struct {
	Fingerprint certutil.Fingerprint
	Label       string
	Purpose     Purpose
	Old, New    TrustLevel
	// DistrustAfterSet is true when the change introduced or altered a
	// partial-distrust date for the purpose.
	DistrustAfterSet bool
	DistrustAfter    time.Time
	// DistrustAfterCleared is true when the old snapshot carried a
	// partial-distrust date for the purpose and the new one dropped it —
	// a re-trust, which relying parties care about as much as the
	// distrust itself.
	DistrustAfterCleared bool
}

// String renders the change for logs.
func (c TrustChange) String() string {
	s := fmt.Sprintf("%s %s %s: %s -> %s", c.Fingerprint.Short(), c.Label, c.Purpose, c.Old, c.New)
	if c.DistrustAfterSet {
		s += fmt.Sprintf(" (distrust-after %s)", c.DistrustAfter.Format("2006-01-02"))
	}
	if c.DistrustAfterCleared {
		s += " (distrust-after cleared)"
	}
	return s
}

// Diff is the difference between two snapshots.
type Diff struct {
	// Added / Removed hold entries present in only the new / old snapshot.
	Added   []*TrustEntry
	Removed []*TrustEntry
	// TrustChanges holds per-purpose trust transitions for retained
	// certificates.
	TrustChanges []TrustChange
}

// Empty reports whether the snapshots are identical under the diff.
func (d Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.TrustChanges) == 0
}

// String summarizes the diff.
func (d Diff) String() string {
	return fmt.Sprintf("+%d -%d ~%d", len(d.Added), len(d.Removed), len(d.TrustChanges))
}

// DiffSnapshots computes new-relative-to-old membership and trust changes.
// Added and Removed are sorted by fingerprint and TrustChanges by
// (fingerprint, purpose), so diff output — and the change events built from
// it — is byte-stable across runs regardless of map iteration order.
func DiffSnapshots(old, new *Snapshot) Diff {
	var d Diff
	for _, e := range new.Entries() {
		prev, ok := old.Lookup(e.Fingerprint)
		if !ok {
			d.Added = append(d.Added, e)
			continue
		}
		for _, p := range AllPurposes {
			oldLevel, newLevel := prev.TrustFor(p), e.TrustFor(p)
			oldDA, hadDA := prev.DistrustAfterFor(p)
			newDA, hasDA := e.DistrustAfterFor(p)
			daSet := hasDA && (!hadDA || !oldDA.Equal(newDA))
			daCleared := hadDA && !hasDA
			if oldLevel != newLevel || daSet || daCleared {
				tc := TrustChange{
					Fingerprint: e.Fingerprint,
					Label:       e.Label,
					Purpose:     p,
					Old:         oldLevel,
					New:         newLevel,
				}
				if daSet {
					tc.DistrustAfterSet = true
					tc.DistrustAfter = newDA
				}
				tc.DistrustAfterCleared = daCleared
				d.TrustChanges = append(d.TrustChanges, tc)
			}
		}
	}
	for _, e := range old.Entries() {
		if _, ok := new.Lookup(e.Fingerprint); !ok {
			d.Removed = append(d.Removed, e)
		}
	}
	sortEntries(d.Added)
	sortEntries(d.Removed)
	sort.Slice(d.TrustChanges, func(i, j int) bool {
		a, b := d.TrustChanges[i], d.TrustChanges[j]
		if c := strings.Compare(a.Fingerprint.String(), b.Fingerprint.String()); c != 0 {
			return c < 0
		}
		return a.Purpose < b.Purpose
	})
	return d
}

// SetDiff compares the purpose-trusted sets of two snapshots: fingerprints
// only in a, only in b, and in both. This is the root-membership view
// Figure 4 plots for derivatives against NSS.
func SetDiff(a, b *Snapshot, p Purpose) (onlyA, onlyB, both []certutil.Fingerprint) {
	setA, setB := a.TrustedSet(p), b.TrustedSet(p)
	for fp := range setA {
		if setB[fp] {
			both = append(both, fp)
		} else {
			onlyA = append(onlyA, fp)
		}
	}
	for fp := range setB {
		if !setA[fp] {
			onlyB = append(onlyB, fp)
		}
	}
	sortFingerprints(onlyA)
	sortFingerprints(onlyB)
	sortFingerprints(both)
	return onlyA, onlyB, both
}

func sortFingerprints(fps []certutil.Fingerprint) {
	for i := 1; i < len(fps); i++ {
		for j := i; j > 0 && strings.Compare(fps[j].String(), fps[j-1].String()) < 0; j-- {
			fps[j], fps[j-1] = fps[j-1], fps[j]
		}
	}
}
