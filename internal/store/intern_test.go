package store

import (
	"sync"
	"testing"

	"repro/internal/bitset"
	"repro/internal/certutil"
)

func TestInternerAssignsDenseStableIDs(t *testing.T) {
	in := NewInterner()
	fps := make([]certutil.Fingerprint, 10)
	for i := range fps {
		fps[i] = certutil.SHA256Fingerprint([]byte{byte(i)})
	}
	for i, fp := range fps {
		if id := in.ID(fp); id != uint32(i) {
			t.Fatalf("ID(%d) = %d on first sight", i, id)
		}
	}
	for i, fp := range fps {
		if id := in.ID(fp); id != uint32(i) {
			t.Fatalf("ID(%d) = %d on repeat", i, id)
		}
		if got, ok := in.FingerprintOf(uint32(i)); !ok || got != fp {
			t.Fatalf("FingerprintOf(%d) mismatch", i)
		}
	}
	if in.Len() != len(fps) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(fps))
	}
	if _, ok := in.LookupID(certutil.SHA256Fingerprint([]byte{99})); ok {
		t.Fatal("LookupID must not assign")
	}
	if _, ok := in.FingerprintOf(uint32(len(fps))); ok {
		t.Fatal("FingerprintOf out of range must miss")
	}
}

func TestInternerFingerprintSetRoundTrip(t *testing.T) {
	in := NewInterner()
	want := make(map[certutil.Fingerprint]bool)
	bs := bitset.New(8)
	for i := 0; i < 8; i += 2 {
		fp := certutil.SHA256Fingerprint([]byte{byte(i)})
		want[fp] = true
		bs.Add(in.ID(fp))
	}
	got := in.FingerprintSet(bs)
	if len(got) != len(want) {
		t.Fatalf("round trip size %d, want %d", len(got), len(want))
	}
	for fp := range want {
		if !got[fp] {
			t.Fatalf("missing %s", fp)
		}
	}
}

// TestTrustedBitsMatchesTrustedSet pins the memoized bitset view to the
// reference map view across purposes, including after mutation.
func TestTrustedBitsMatchesTrustedSet(t *testing.T) {
	rs := roots(t, 6)
	s := NewSnapshot("NSS", "1", date(2020, 1, 1))
	for i, r := range rs {
		if i%2 == 0 {
			s.Add(entry(t, r, ServerAuth))
		} else {
			s.Add(entry(t, r, EmailProtection))
		}
	}
	in := NewInterner()
	for _, p := range AllPurposes {
		want := s.TrustedSet(p)
		got := in.FingerprintSet(s.TrustedBits(p, in))
		if len(got) != len(want) {
			t.Fatalf("%v: bits %d roots, map %d", p, len(got), len(want))
		}
		for fp := range want {
			if !got[fp] {
				t.Fatalf("%v: bits missing %s", p, fp)
			}
		}
	}
	// Mutation must invalidate the cache.
	before := s.TrustedBits(ServerAuth, in).Count()
	s.Remove(certutil.SHA256Fingerprint(rs[0].DER))
	after := s.TrustedBits(ServerAuth, in).Count()
	if after != before-1 {
		t.Fatalf("after Remove: %d trusted, want %d", after, before-1)
	}
}

// TestTrustedBitsConcurrent hammers the memoized trusted-bitset cache from
// 32 goroutines (run under -race in CI): all readers must observe the same
// canonical bitset contents whether they hit the database interner, the
// nil shortcut, or a private interner.
func TestTrustedBitsConcurrent(t *testing.T) {
	rs := roots(t, 12)
	db := NewDatabase()
	s := NewSnapshot("NSS", "1", date(2020, 1, 1))
	for _, r := range rs {
		s.Add(entry(t, r, ServerAuth, EmailProtection))
	}
	if err := db.AddSnapshot(s); err != nil {
		t.Fatal(err)
	}
	in := db.Interner()

	const goroutines = 32
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var bits *bitset.Set
				switch g % 3 {
				case 0:
					bits = s.TrustedBits(ServerAuth, in)
				case 1:
					bits = s.TrustedBits(ServerAuth, nil) // attached-interner shortcut
				default:
					bits = s.TrustedBits(EmailProtection, in)
				}
				want := len(rs)
				if got := bits.Count(); got != want {
					errs <- "count mismatch"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// After the stampede, the cache must hold one canonical set per
	// purpose: repeated calls return the same pointer.
	if s.TrustedBits(ServerAuth, in) != s.TrustedBits(ServerAuth, in) {
		t.Fatal("memoized bitset not canonical")
	}
}
