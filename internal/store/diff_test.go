package store

// Edge-case coverage for DiffSnapshots' trust-change detection and its
// ordering guarantees — the contract internal/tracker builds change events
// on, so golden event payloads must not wobble with map iteration order.

import (
	"sort"
	"strings"
	"testing"
)

// pair builds old/new snapshots over the same root and hands the entries to
// the caller for mutation before diffing.
func pair(t *testing.T, mutate func(oldE, newE *TrustEntry)) Diff {
	t.Helper()
	r := roots(t, 1)[0]
	oldE := entry(t, r, ServerAuth)
	newE := entry(t, r, ServerAuth)
	mutate(oldE, newE)
	old := NewSnapshot("NSS", "a", date(2020, 1, 1))
	old.Add(oldE)
	nw := NewSnapshot("NSS", "b", date(2020, 6, 1))
	nw.Add(newE)
	return DiffSnapshots(old, nw)
}

func TestDiffDistrustAfterIntroduced(t *testing.T) {
	d := pair(t, func(_, newE *TrustEntry) {
		newE.SetDistrustAfter(ServerAuth, date(2020, 9, 1))
	})
	if len(d.TrustChanges) != 1 {
		t.Fatalf("trust changes = %d, want 1", len(d.TrustChanges))
	}
	tc := d.TrustChanges[0]
	if !tc.DistrustAfterSet || tc.DistrustAfterCleared || !tc.DistrustAfter.Equal(date(2020, 9, 1)) {
		t.Errorf("introduced distrust-after misreported: %s", tc)
	}
	if tc.Old != Trusted || tc.New != Trusted {
		t.Errorf("levels = %s -> %s, want trusted on both sides", tc.Old, tc.New)
	}
}

func TestDiffDistrustAfterAltered(t *testing.T) {
	d := pair(t, func(oldE, newE *TrustEntry) {
		oldE.SetDistrustAfter(ServerAuth, date(2020, 9, 1))
		newE.SetDistrustAfter(ServerAuth, date(2021, 3, 1))
	})
	if len(d.TrustChanges) != 1 {
		t.Fatalf("trust changes = %d, want 1", len(d.TrustChanges))
	}
	tc := d.TrustChanges[0]
	if !tc.DistrustAfterSet || !tc.DistrustAfter.Equal(date(2021, 3, 1)) {
		t.Errorf("altered distrust-after misreported: %s", tc)
	}
}

func TestDiffDistrustAfterUnchangedIsQuiet(t *testing.T) {
	d := pair(t, func(oldE, newE *TrustEntry) {
		oldE.SetDistrustAfter(ServerAuth, date(2020, 9, 1))
		newE.SetDistrustAfter(ServerAuth, date(2020, 9, 1))
	})
	if !d.Empty() {
		t.Errorf("identical distrust-after produced changes: %s", d)
	}
}

func TestDiffDistrustAfterCleared(t *testing.T) {
	d := pair(t, func(oldE, _ *TrustEntry) {
		oldE.SetDistrustAfter(ServerAuth, date(2020, 9, 1))
	})
	if len(d.TrustChanges) != 1 {
		t.Fatalf("trust changes = %d, want 1 (re-trust is a change)", len(d.TrustChanges))
	}
	tc := d.TrustChanges[0]
	if !tc.DistrustAfterCleared || tc.DistrustAfterSet {
		t.Errorf("cleared distrust-after misreported: %s", tc)
	}
}

func TestDiffPurposeAddedToRetainedRoot(t *testing.T) {
	d := pair(t, func(_, newE *TrustEntry) {
		newE.SetTrust(EmailProtection, Trusted)
	})
	if len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("membership changed: %s", d)
	}
	if len(d.TrustChanges) != 1 {
		t.Fatalf("trust changes = %d, want 1", len(d.TrustChanges))
	}
	tc := d.TrustChanges[0]
	if tc.Purpose != EmailProtection || tc.Old != Unspecified || tc.New != Trusted {
		t.Errorf("purpose grant misreported: %s", tc)
	}
}

func TestDiffLabelOnlyChangeIsQuiet(t *testing.T) {
	d := pair(t, func(_, newE *TrustEntry) {
		newE.Label = "Renamed CA Root"
	})
	if !d.Empty() {
		t.Errorf("label-only change produced events: %s", d)
	}
}

// TestDiffDeterministicOrder checks the sort contract: added/removed by
// fingerprint, trust changes by (fingerprint, purpose), identical across
// repeated runs.
func TestDiffDeterministicOrder(t *testing.T) {
	rs := roots(t, 6)
	old := NewSnapshot("NSS", "a", date(2020, 1, 1))
	nw := NewSnapshot("NSS", "b", date(2020, 6, 1))
	// rs[0..2] only in new (added); rs[3..5] only in old (removed).
	for _, r := range rs[:3] {
		nw.Add(entry(t, r, ServerAuth))
	}
	for _, r := range rs[3:] {
		old.Add(entry(t, r, ServerAuth))
	}
	// One shared root with changes on two purposes.
	shared := roots(t, 7)[6]
	old.Add(entry(t, shared, ServerAuth))
	e := entry(t, shared, ServerAuth)
	e.SetTrust(EmailProtection, Trusted)
	e.SetDistrustAfter(ServerAuth, date(2020, 9, 1))
	nw.Add(e)

	var prev Diff
	for run := 0; run < 5; run++ {
		d := DiffSnapshots(old, nw)
		for _, list := range [][]*TrustEntry{d.Added, d.Removed} {
			if !sort.SliceIsSorted(list, func(i, j int) bool {
				return strings.Compare(list[i].Fingerprint.String(), list[j].Fingerprint.String()) < 0
			}) {
				t.Fatalf("run %d: membership list unsorted", run)
			}
		}
		if !sort.SliceIsSorted(d.TrustChanges, func(i, j int) bool {
			a, b := d.TrustChanges[i], d.TrustChanges[j]
			if c := strings.Compare(a.Fingerprint.String(), b.Fingerprint.String()); c != 0 {
				return c < 0
			}
			return a.Purpose < b.Purpose
		}) {
			t.Fatalf("run %d: trust changes unsorted", run)
		}
		if run > 0 {
			for i := range d.TrustChanges {
				if d.TrustChanges[i] != prev.TrustChanges[i] {
					t.Fatalf("run %d: trust change %d differs from run %d", run, i, run-1)
				}
			}
		}
		prev = d
	}
}
