package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/certgen"
)

var (
	testPool  = certgen.NewKeyPool("store-test")
	testRoots []*certgen.Root
	rootsOnce sync.Once
)

// roots returns n distinct test root certificates, minted once per process.
func roots(t testing.TB, n int) []*certgen.Root {
	t.Helper()
	rootsOnce.Do(func() {
		for i := 0; i < 24; i++ {
			spec := certgen.RootSpec{
				Name:      fmt.Sprintf("Store Test Root %02d", i),
				Org:       "Store Test",
				Country:   "US",
				Key:       certgen.ECDSA256,
				Sig:       certgen.ECDSAWithSHA256,
				NotBefore: time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2034, 1, 1, 0, 0, 0, 0, time.UTC),
				KeyIndex:  i,
			}
			r, err := certgen.NewRoot(testPool, spec)
			if err != nil {
				panic(err)
			}
			testRoots = append(testRoots, r)
		}
	})
	if n > len(testRoots) {
		t.Fatalf("test asked for %d roots, only %d prepared", n, len(testRoots))
	}
	return testRoots[:n]
}

func entry(t testing.TB, r *certgen.Root, purposes ...Purpose) *TrustEntry {
	t.Helper()
	e, err := NewTrustedEntry(r.DER, purposes...)
	if err != nil {
		t.Fatalf("NewTrustedEntry: %v", err)
	}
	return e
}

func date(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

func TestPurposeStringRoundTrip(t *testing.T) {
	for _, p := range AllPurposes {
		got, err := ParsePurpose(p.String())
		if err != nil {
			t.Fatalf("ParsePurpose(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("purpose round trip: %v != %v", got, p)
		}
	}
	if _, err := ParsePurpose("bogus"); err == nil {
		t.Error("bogus purpose should not parse")
	}
}

func TestTrustLevelStringRoundTrip(t *testing.T) {
	for _, l := range []TrustLevel{Unspecified, Trusted, MustVerify, Distrusted} {
		got, err := ParseTrustLevel(l.String())
		if err != nil {
			t.Fatalf("ParseTrustLevel(%q): %v", l.String(), err)
		}
		if got != l {
			t.Errorf("level round trip: %v != %v", got, l)
		}
	}
	if _, err := ParseTrustLevel("nope"); err == nil {
		t.Error("bogus level should not parse")
	}
}

func TestNewEntryRejectsGarbage(t *testing.T) {
	if _, err := NewEntry([]byte{0x30, 0x01, 0x02}); err == nil {
		t.Error("garbage DER should not parse")
	}
}

func TestEntryTrustAccessors(t *testing.T) {
	r := roots(t, 1)[0]
	e := entry(t, r, ServerAuth)
	if !e.TrustedFor(ServerAuth) {
		t.Error("entry should be trusted for server auth")
	}
	if e.TrustedFor(EmailProtection) {
		t.Error("entry should not be trusted for email")
	}
	if e.TrustFor(EmailProtection) != Unspecified {
		t.Error("email trust should be unspecified")
	}
	e.SetTrust(EmailProtection, Distrusted)
	if e.TrustFor(EmailProtection) != Distrusted {
		t.Error("SetTrust did not take")
	}
	da := date(2020, 9, 1)
	e.SetDistrustAfter(ServerAuth, da)
	got, ok := e.DistrustAfterFor(ServerAuth)
	if !ok || !got.Equal(da) {
		t.Error("DistrustAfter round trip failed")
	}
	// Partial distrust keeps the anchor trusted.
	if !e.TrustedFor(ServerAuth) {
		t.Error("partial distrust must not clear anchor trust")
	}
}

func TestEntryCloneIsDeep(t *testing.T) {
	r := roots(t, 1)[0]
	e := entry(t, r, ServerAuth)
	e.SetDistrustAfter(ServerAuth, date(2020, 1, 1))
	c := e.Clone()
	c.SetTrust(ServerAuth, Distrusted)
	c.SetDistrustAfter(ServerAuth, date(2021, 1, 1))
	if e.TrustFor(ServerAuth) != Trusted {
		t.Error("mutating clone changed original trust")
	}
	if got, _ := e.DistrustAfterFor(ServerAuth); !got.Equal(date(2020, 1, 1)) {
		t.Error("mutating clone changed original distrust-after")
	}
	if c.Fingerprint != e.Fingerprint {
		t.Error("clone must keep fingerprint")
	}
}

func TestEntryString(t *testing.T) {
	r := roots(t, 1)[0]
	e := entry(t, r, ServerAuth)
	s := e.String()
	if s == "" || len(s) < 10 {
		t.Errorf("entry string too short: %q", s)
	}
}

func TestSnapshotAddLookupRemove(t *testing.T) {
	rs := roots(t, 3)
	s := NewSnapshot("NSS", "3.50", date(2020, 1, 1))
	for _, r := range rs {
		s.Add(entry(t, r, ServerAuth))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	fp := entry(t, rs[1], ServerAuth).Fingerprint
	if _, ok := s.Lookup(fp); !ok {
		t.Fatal("Lookup missed an added entry")
	}
	if !s.Remove(fp) {
		t.Fatal("Remove reported missing entry")
	}
	if s.Remove(fp) {
		t.Fatal("second Remove should report absent")
	}
	if s.Len() != 2 {
		t.Fatalf("Len after remove = %d, want 2", s.Len())
	}
}

func TestSnapshotEntryByFingerprint(t *testing.T) {
	rs := roots(t, 2)
	s := NewSnapshot("NSS", "3.50", date(2020, 1, 1))
	e := entry(t, rs[0], ServerAuth)
	s.Add(e)

	hex := e.Fingerprint.String()
	got, ok := s.EntryByFingerprint(hex)
	if !ok || got != e {
		t.Fatalf("EntryByFingerprint(%q) = %v, %v", hex, got, ok)
	}
	// Colon-separated and upper-case renderings resolve too.
	withColons := hex[:2] + ":" + hex[2:4] + ":" + hex[4:]
	if _, ok := s.EntryByFingerprint(withColons); !ok {
		t.Error("colon-separated fingerprint not accepted")
	}
	// Absent and malformed inputs miss without panicking.
	if _, ok := s.EntryByFingerprint(entry(t, rs[1], ServerAuth).Fingerprint.String()); ok {
		t.Error("absent fingerprint reported present")
	}
	if _, ok := s.EntryByFingerprint("not-hex"); ok {
		t.Error("malformed fingerprint reported present")
	}
}

func TestSnapshotAddReplaces(t *testing.T) {
	r := roots(t, 1)[0]
	s := NewSnapshot("NSS", "3.50", date(2020, 1, 1))
	s.Add(entry(t, r, ServerAuth))
	e2 := entry(t, r, ServerAuth, EmailProtection)
	s.Add(e2)
	if s.Len() != 1 {
		t.Fatalf("duplicate add should replace, Len = %d", s.Len())
	}
	got, _ := s.Lookup(e2.Fingerprint)
	if !got.TrustedFor(EmailProtection) {
		t.Error("replacement entry not stored")
	}
}

func TestSnapshotTrustedSetAndCounts(t *testing.T) {
	rs := roots(t, 4)
	s := NewSnapshot("NSS", "3.50", date(2020, 1, 1))
	s.Add(entry(t, rs[0], ServerAuth))
	s.Add(entry(t, rs[1], ServerAuth, EmailProtection))
	s.Add(entry(t, rs[2], EmailProtection))
	distrusted := entry(t, rs[3])
	distrusted.SetTrust(ServerAuth, Distrusted)
	s.Add(distrusted)

	if got := s.TrustedCount(ServerAuth); got != 2 {
		t.Errorf("TrustedCount(ServerAuth) = %d, want 2", got)
	}
	if got := s.TrustedCount(EmailProtection); got != 2 {
		t.Errorf("TrustedCount(Email) = %d, want 2", got)
	}
	set := s.TrustedSet(ServerAuth)
	if len(set) != 2 {
		t.Errorf("TrustedSet size = %d, want 2", len(set))
	}
	if set[distrusted.Fingerprint] {
		t.Error("distrusted entry must not be in trusted set")
	}
}

func TestSnapshotExpiredCount(t *testing.T) {
	rs := roots(t, 2)
	// Snapshot dated after the roots' NotAfter.
	s := NewSnapshot("Microsoft", "v1", date(2035, 1, 1))
	s.Add(entry(t, rs[0], ServerAuth))
	s.Add(entry(t, rs[1], ServerAuth))
	if got := s.ExpiredCount(ServerAuth); got != 2 {
		t.Errorf("ExpiredCount = %d, want 2 (roots expire 2034)", got)
	}
	s2 := NewSnapshot("Microsoft", "v1", date(2020, 1, 1))
	s2.Add(entry(t, rs[0], ServerAuth))
	if got := s2.ExpiredCount(ServerAuth); got != 0 {
		t.Errorf("ExpiredCount = %d, want 0", got)
	}
}

func TestSnapshotEntriesSorted(t *testing.T) {
	rs := roots(t, 5)
	s := NewSnapshot("NSS", "x", date(2020, 1, 1))
	for _, r := range rs {
		s.Add(entry(t, r, ServerAuth))
	}
	es := s.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Fingerprint.String() >= es[i].Fingerprint.String() {
			t.Fatal("Entries not sorted by fingerprint")
		}
	}
}

func TestSnapshotCloneIndependent(t *testing.T) {
	r := roots(t, 1)[0]
	s := NewSnapshot("NSS", "x", date(2020, 1, 1))
	e := entry(t, r, ServerAuth)
	s.Add(e)
	c := s.Clone()
	ce, _ := c.Lookup(e.Fingerprint)
	ce.SetTrust(ServerAuth, Distrusted)
	oe, _ := s.Lookup(e.Fingerprint)
	if oe.TrustFor(ServerAuth) != Trusted {
		t.Error("clone shares trust maps with original")
	}
}

func TestHistoryOrderingAndAt(t *testing.T) {
	h := NewHistory("NSS")
	r := roots(t, 1)[0]
	for _, d := range []time.Time{date(2020, 6, 1), date(2019, 1, 1), date(2021, 3, 1)} {
		s := NewSnapshot("NSS", d.Format("2006-01"), d)
		s.Add(entry(t, r, ServerAuth))
		if err := h.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	snaps := h.Snapshots()
	if !snaps[0].Date.Equal(date(2019, 1, 1)) || !snaps[2].Date.Equal(date(2021, 3, 1)) {
		t.Error("history not date-ordered")
	}
	if got := h.At(date(2020, 12, 1)); got == nil || !got.Date.Equal(date(2020, 6, 1)) {
		t.Errorf("At(2020-12) = %v", got)
	}
	if got := h.At(date(2018, 1, 1)); got != nil {
		t.Error("At before history should be nil")
	}
	if h.First() == nil || !h.First().Date.Equal(date(2019, 1, 1)) {
		t.Error("First wrong")
	}
	if h.Latest() == nil || !h.Latest().Date.Equal(date(2021, 3, 1)) {
		t.Error("Latest wrong")
	}
	if got := len(h.Range(date(2019, 6, 1), date(2020, 12, 31))); got != 1 {
		t.Errorf("Range count = %d, want 1", got)
	}
}

func TestHistoryRejectsWrongProvider(t *testing.T) {
	h := NewHistory("NSS")
	s := NewSnapshot("Apple", "x", date(2020, 1, 1))
	if err := h.Append(s); err == nil {
		t.Error("appending foreign provider should fail")
	}
}

func TestHistoryTrustedUntil(t *testing.T) {
	rs := roots(t, 2)
	h := NewHistory("NSS")
	stay, gone := rs[0], rs[1]
	// 2019: both trusted. 2020: only stay.
	s1 := NewSnapshot("NSS", "a", date(2019, 1, 1))
	s1.Add(entry(t, stay, ServerAuth))
	s1.Add(entry(t, gone, ServerAuth))
	s2 := NewSnapshot("NSS", "b", date(2020, 1, 1))
	s2.Add(entry(t, stay, ServerAuth))
	if err := h.Append(s1); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(s2); err != nil {
		t.Fatal(err)
	}

	goneFP := entry(t, gone, ServerAuth).Fingerprint
	last, still, ever := h.TrustedUntil(goneFP, ServerAuth)
	if !ever || still || !last.Equal(date(2019, 1, 1)) {
		t.Errorf("TrustedUntil(gone) = %v still=%v ever=%v", last, still, ever)
	}
	stayFP := entry(t, stay, ServerAuth).Fingerprint
	last, still, ever = h.TrustedUntil(stayFP, ServerAuth)
	if !ever || !still || !last.Equal(date(2020, 1, 1)) {
		t.Errorf("TrustedUntil(stay) = %v still=%v ever=%v", last, still, ever)
	}
	if _, _, ever := h.TrustedUntil(entry(t, roots(t, 3)[2], ServerAuth).Fingerprint, ServerAuth); ever {
		t.Error("never-trusted fingerprint reported as ever trusted")
	}
	first, ok := h.FirstTrusted(goneFP, ServerAuth)
	if !ok || !first.Equal(date(2019, 1, 1)) {
		t.Errorf("FirstTrusted = %v, %v", first, ok)
	}
}

func TestHistoryEverTrusted(t *testing.T) {
	rs := roots(t, 2)
	h := NewHistory("NSS")
	s1 := NewSnapshot("NSS", "a", date(2019, 1, 1))
	s1.Add(entry(t, rs[0], ServerAuth))
	s2 := NewSnapshot("NSS", "b", date(2020, 1, 1))
	s2.Add(entry(t, rs[1], ServerAuth))
	_ = h.Append(s1)
	_ = h.Append(s2)
	if got := len(h.EverTrusted(ServerAuth)); got != 2 {
		t.Errorf("EverTrusted = %d, want 2", got)
	}
	if got := len(h.EverTrusted(EmailProtection)); got != 0 {
		t.Errorf("EverTrusted(email) = %d, want 0", got)
	}
}

func TestDatabase(t *testing.T) {
	r := roots(t, 1)[0]
	db := NewDatabase()
	for _, prov := range []string{"NSS", "Apple"} {
		s := NewSnapshot(prov, "x", date(2020, 1, 1))
		s.Add(entry(t, r, ServerAuth))
		if err := db.AddSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.TotalSnapshots(); got != 2 {
		t.Errorf("TotalSnapshots = %d", got)
	}
	provs := db.Providers()
	if len(provs) != 2 || provs[0] != "Apple" || provs[1] != "NSS" {
		t.Errorf("Providers = %v", provs)
	}
	if db.History("NSS") == nil || db.History("Missing") != nil {
		t.Error("History lookup wrong")
	}
	if got := db.UniqueRoots("NSS", ServerAuth); got != 1 {
		t.Errorf("UniqueRoots = %d", got)
	}
	if got := db.UniqueRoots("Missing", ServerAuth); got != 0 {
		t.Errorf("UniqueRoots missing = %d", got)
	}
	if got := len(db.AllSnapshots()); got != 2 {
		t.Errorf("AllSnapshots = %d", got)
	}
}

func TestDiffSnapshots(t *testing.T) {
	rs := roots(t, 3)
	old := NewSnapshot("NSS", "a", date(2020, 1, 1))
	old.Add(entry(t, rs[0], ServerAuth))
	old.Add(entry(t, rs[1], ServerAuth))
	nw := NewSnapshot("NSS", "b", date(2020, 6, 1))
	nw.Add(entry(t, rs[1], ServerAuth))
	nw.Add(entry(t, rs[2], ServerAuth))

	d := DiffSnapshots(old, nw)
	if len(d.Added) != 1 || len(d.Removed) != 1 || len(d.TrustChanges) != 0 {
		t.Fatalf("diff = %s", d)
	}
	if d.Empty() {
		t.Error("diff should not be empty")
	}
	same := DiffSnapshots(old, old.Clone())
	if !same.Empty() {
		t.Errorf("self-diff should be empty, got %s", same)
	}
}

func TestDiffDetectsPartialDistrust(t *testing.T) {
	r := roots(t, 1)[0]
	old := NewSnapshot("NSS", "52", date(2020, 5, 1))
	old.Add(entry(t, r, ServerAuth))
	nw := NewSnapshot("NSS", "53", date(2020, 6, 1))
	e := entry(t, r, ServerAuth)
	e.SetDistrustAfter(ServerAuth, date(2020, 9, 1))
	nw.Add(e)

	d := DiffSnapshots(old, nw)
	if len(d.TrustChanges) != 1 {
		t.Fatalf("expected 1 trust change, got %d", len(d.TrustChanges))
	}
	tc := d.TrustChanges[0]
	if !tc.DistrustAfterSet || !tc.DistrustAfter.Equal(date(2020, 9, 1)) {
		t.Errorf("trust change = %s", tc)
	}
	if tc.Old != Trusted || tc.New != Trusted {
		t.Error("partial distrust should keep level Trusted on both sides")
	}
}

func TestSetDiff(t *testing.T) {
	rs := roots(t, 3)
	a := NewSnapshot("NSS", "a", date(2020, 1, 1))
	a.Add(entry(t, rs[0], ServerAuth))
	a.Add(entry(t, rs[1], ServerAuth))
	b := NewSnapshot("Debian", "b", date(2020, 1, 1))
	b.Add(entry(t, rs[1], ServerAuth))
	b.Add(entry(t, rs[2], ServerAuth))

	onlyA, onlyB, both := SetDiff(a, b, ServerAuth)
	if len(onlyA) != 1 || len(onlyB) != 1 || len(both) != 1 {
		t.Fatalf("SetDiff = %d/%d/%d", len(onlyA), len(onlyB), len(both))
	}
}
