package store

import (
	"testing"
	"time"
)

func TestKindNormalize(t *testing.T) {
	if Kind("").Normalize() != KindTLS {
		t.Error("zero kind should normalize to tls")
	}
	if KindCT.Normalize() != KindCT {
		t.Error("ct should normalize to itself")
	}
	if Kind("").String() != "tls" {
		t.Errorf("zero kind String = %q", Kind("").String())
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"tls", "ct", "manifest", ""} {
		k, err := ParseKind(s)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", s, err)
			continue
		}
		want := s
		if want == "" {
			want = "tls"
		}
		if string(k) != want {
			t.Errorf("ParseKind(%q) = %q", s, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus): no error")
	}
}

func TestSnapshotClonePropagatesKind(t *testing.T) {
	s := NewSnapshot("CT-Argon", "2021-01-01", time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	s.Kind = KindCT
	if got := s.Clone().Kind; got != KindCT {
		t.Errorf("Clone kind = %q", got)
	}
	if got := s.ShareClone().Kind; got != KindCT {
		t.Errorf("ShareClone kind = %q", got)
	}
}
