package store_test

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/store"
	"repro/internal/testcerts"
)

// randomSnapshot builds a snapshot whose membership and trust levels are a
// deterministic function of the seed.
func date(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

func randomSnapshot(t testing.TB, seed uint64, provider string) *store.Snapshot {
	t.Helper()
	rs := testcerts.Roots(12)
	s := store.NewSnapshot(provider, "prop", date(2020, 1, 1))
	x := seed
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 33
	}
	for _, r := range rs {
		if next()%2 == 0 {
			continue
		}
		e, err := store.NewEntry(r.DER)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range store.AllPurposes {
			switch next() % 4 {
			case 0:
				e.SetTrust(p, store.Trusted)
			case 1:
				e.SetTrust(p, store.MustVerify)
			case 2:
				e.SetTrust(p, store.Distrusted)
			}
		}
		if next()%3 == 0 {
			e.SetDistrustAfter(store.ServerAuth, date(2019, int(next()%12)+1, 1))
		}
		s.Add(e)
	}
	return s
}

// TestDiffProperties checks the algebra of snapshot diffs on random pairs:
// reversal swaps added/removed, self-diff is empty, and |added| - |removed|
// equals the size delta.
func TestDiffProperties(t *testing.T) {
	prop := func(seedA, seedB uint64) bool {
		a := randomSnapshot(t, seedA, "A")
		b := randomSnapshot(t, seedB, "B")

		ab := store.DiffSnapshots(a, b)
		ba := store.DiffSnapshots(b, a)
		if len(ab.Added) != len(ba.Removed) || len(ab.Removed) != len(ba.Added) {
			return false
		}
		if len(ab.Added)-len(ab.Removed) != b.Len()-a.Len() {
			return false
		}
		if !store.DiffSnapshots(a, a.Clone()).Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSetDiffProperties checks the set-diff partition: onlyA, onlyB and
// both are disjoint and cover both trusted sets exactly.
func TestSetDiffProperties(t *testing.T) {
	prop := func(seedA, seedB uint64) bool {
		a := randomSnapshot(t, seedA, "A")
		b := randomSnapshot(t, seedB, "B")
		onlyA, onlyB, both := store.SetDiff(a, b, store.ServerAuth)
		if len(onlyA)+len(both) != len(a.TrustedSet(store.ServerAuth)) {
			return false
		}
		if len(onlyB)+len(both) != len(b.TrustedSet(store.ServerAuth)) {
			return false
		}
		seen := map[string]int{}
		for _, fp := range onlyA {
			seen[fp.String()]++
		}
		for _, fp := range onlyB {
			seen[fp.String()]++
		}
		for _, fp := range both {
			seen[fp.String()]++
		}
		for _, n := range seen {
			if n != 1 {
				return false // partitions must be disjoint
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryAtMonotonic checks History.At: the result's date never
// exceeds the query instant and is the maximum such snapshot.
func TestHistoryAtMonotonic(t *testing.T) {
	h := store.NewHistory("P")
	for m := 1; m <= 12; m++ {
		s := randomSnapshot(t, uint64(m), "P")
		s.Date = date(2020, m, 15)
		s.Version = s.Date.Format("2006-01")
		if err := h.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	prop := func(dayOffset uint16) bool {
		at := date(2020, 1, 1).Add(time.Duration(dayOffset%500) * 24 * time.Hour)
		got := h.At(at)
		if got == nil {
			return at.Before(date(2020, 1, 15))
		}
		if got.Date.After(at) {
			return false
		}
		for _, s := range h.Snapshots() {
			if s.Date.After(got.Date) && !s.Date.After(at) {
				return false // a later eligible snapshot existed
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneInvariant checks Clone is a true deep copy under random
// mutation.
func TestCloneInvariant(t *testing.T) {
	prop := func(seed uint64, purposeIdx uint8) bool {
		s := randomSnapshot(t, seed, "P")
		if s.Len() == 0 {
			return true
		}
		c := s.Clone()
		p := store.AllPurposes[int(purposeIdx)%len(store.AllPurposes)]
		for _, e := range c.Entries() {
			e.SetTrust(p, store.Distrusted)
			e.SetDistrustAfter(p, date(2021, 1, 1))
		}
		// Original unchanged: its trusted set must match a fresh build.
		fresh := randomSnapshot(t, seed, "P")
		wantSet := fresh.TrustedSet(p)
		gotSet := s.TrustedSet(p)
		if len(wantSet) != len(gotSet) {
			return false
		}
		for fp := range wantSet {
			if !gotSet[fp] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
