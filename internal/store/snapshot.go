package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/certutil"
)

// Snapshot is one root store at one point in time: the paper's unit of
// measurement (619 snapshots across ten providers).
type Snapshot struct {
	// Provider names the root-store provider ("NSS", "Debian", ...).
	Provider string
	// Version is the provider's release label ("3.53", "20200601", ...).
	Version string
	// Date approximates the release date (§3.1: treated as coarse).
	Date time.Time
	// Kind tags the snapshot's trust ecosystem (tls | ct | manifest).
	// The zero value means KindTLS; compare via Kind.Normalize().
	Kind Kind

	entries []*TrustEntry
	byFP    map[certutil.Fingerprint]*TrustEntry

	// bitsMu guards the memoized trusted bitsets and the attached
	// interner. The cache is invalidated by Add/Remove and by attachment
	// to a different interner; entries themselves are immutable once
	// added (by the same convention that shares *x509.Certificate).
	bitsMu      sync.RWMutex
	interner    *Interner
	trustedBits [numPurposes]*bitset.Set
}

// NewSnapshot creates an empty snapshot.
func NewSnapshot(provider, version string, date time.Time) *Snapshot {
	return &Snapshot{
		Provider: provider,
		Version:  version,
		Date:     date,
		byFP:     make(map[certutil.Fingerprint]*TrustEntry),
	}
}

// Add inserts an entry, replacing any previous entry with the same
// fingerprint (matching how stores themselves are keyed by certificate).
func (s *Snapshot) Add(e *TrustEntry) {
	if prev, ok := s.byFP[e.Fingerprint]; ok {
		for i, x := range s.entries {
			if x == prev {
				s.entries[i] = e
				break
			}
		}
	} else {
		s.entries = append(s.entries, e)
	}
	s.byFP[e.Fingerprint] = e
	s.invalidateBits()
}

// Remove deletes the entry with the fingerprint; it reports whether an entry
// was present.
func (s *Snapshot) Remove(fp certutil.Fingerprint) bool {
	e, ok := s.byFP[fp]
	if !ok {
		return false
	}
	delete(s.byFP, fp)
	for i, x := range s.entries {
		if x == e {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	s.invalidateBits()
	return true
}

// Lookup returns the entry with the fingerprint, if present.
func (s *Snapshot) Lookup(fp certutil.Fingerprint) (*TrustEntry, bool) {
	e, ok := s.byFP[fp]
	return e, ok
}

// EntryByFingerprint looks up an entry by its SHA-256 fingerprint rendered
// as hex (optionally colon-separated, any case). It is the string-keyed
// companion to Lookup for callers holding wire-format fingerprints — API
// handlers, CLIs — who would otherwise linear-scan Entries().
func (s *Snapshot) EntryByFingerprint(sha256 string) (*TrustEntry, bool) {
	fp, err := certutil.ParseFingerprint(sha256)
	if err != nil {
		return nil, false
	}
	return s.Lookup(fp)
}

// Len returns the number of entries.
func (s *Snapshot) Len() int { return len(s.entries) }

// Entries returns the entries sorted by fingerprint. The returned slice is
// fresh; entries are shared.
func (s *Snapshot) Entries() []*TrustEntry {
	out := append([]*TrustEntry(nil), s.entries...)
	sortEntries(out)
	return out
}

// TrustedSet returns the fingerprints trusted for the purpose, the set the
// similarity analyses operate on.
func (s *Snapshot) TrustedSet(p Purpose) map[certutil.Fingerprint]bool {
	set := make(map[certutil.Fingerprint]bool)
	for _, e := range s.entries {
		if e.TrustedFor(p) {
			set[e.Fingerprint] = true
		}
	}
	return set
}

// TrustedBits returns the purpose-trusted set as a bitset of IDs drawn
// from in, the hot-path counterpart of TrustedSet. When in is nil the
// snapshot's attached interner is used (snapshots filed in a Database are
// attached to its interner; a bare snapshot self-attaches a private one).
// The result is memoized per purpose against the attached interner and
// safe for any number of concurrent readers; callers must treat the
// returned set as immutable.
func (s *Snapshot) TrustedBits(p Purpose, in *Interner) *bitset.Set {
	s.bitsMu.RLock()
	attached := s.interner
	if (in == nil || in == attached) && attached != nil {
		if b := s.trustedBits[p]; b != nil {
			s.bitsMu.RUnlock()
			return b
		}
	}
	s.bitsMu.RUnlock()

	if in == nil {
		s.bitsMu.Lock()
		if s.interner == nil {
			s.interner = NewInterner()
		}
		in = s.interner
		s.bitsMu.Unlock()
	}

	b := bitset.New(in.Len())
	for _, e := range s.entries {
		if e.TrustedFor(p) {
			b.Add(in.ID(e.Fingerprint))
		}
	}

	s.bitsMu.Lock()
	if in == s.interner {
		if cached := s.trustedBits[p]; cached != nil {
			b = cached // another goroutine won the race; keep one canonical set
		} else {
			s.trustedBits[p] = b
		}
	}
	s.bitsMu.Unlock()
	return b
}

// Interner returns the interner the snapshot's memoized bitsets are keyed
// by — the database's once filed, nil for a bare snapshot that has never
// computed bits.
func (s *Snapshot) Interner() *Interner {
	s.bitsMu.RLock()
	defer s.bitsMu.RUnlock()
	return s.interner
}

// attachInterner pins the snapshot's bitset cache to in (the owning
// database's interner), dropping any bits memoized against another.
func (s *Snapshot) attachInterner(in *Interner) {
	s.bitsMu.Lock()
	if s.interner != in {
		s.interner = in
		s.trustedBits = [numPurposes]*bitset.Set{}
	}
	s.bitsMu.Unlock()
}

// invalidateBits drops the memoized trusted bitsets after a membership
// change.
func (s *Snapshot) invalidateBits() {
	s.bitsMu.Lock()
	s.trustedBits = [numPurposes]*bitset.Set{}
	s.bitsMu.Unlock()
}

// TrustedCount returns the number of entries trusted for the purpose.
func (s *Snapshot) TrustedCount(p Purpose) int {
	n := 0
	for _, e := range s.entries {
		if e.TrustedFor(p) {
			n++
		}
	}
	return n
}

// ExpiredCount returns how many entries trusted for the purpose are expired
// as of the snapshot date (Table 3's "Avg. Expired" metric).
func (s *Snapshot) ExpiredCount(p Purpose) int {
	n := 0
	for _, e := range s.entries {
		if e.TrustedFor(p) && certutil.ExpiredAt(e.Cert, s.Date) {
			n++
		}
	}
	return n
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := NewSnapshot(s.Provider, s.Version, s.Date)
	c.Kind = s.Kind
	for _, e := range s.entries {
		c.Add(e.Clone())
	}
	return c
}

// ShareClone returns a fresh snapshot shell sharing the receiver's entry
// pointers. Entries are immutable once ingested (the convention that already
// shares *x509.Certificate), so sharing lets an incremental reload splice
// unchanged snapshots into a new database without re-parsing anything —
// while the fresh shell keeps the new database's interner attachment and
// bitset memos from mutating the generation still being served.
func (s *Snapshot) ShareClone() *Snapshot {
	c := NewSnapshot(s.Provider, s.Version, s.Date)
	c.Kind = s.Kind
	for _, e := range s.entries {
		c.Add(e)
	}
	return c
}

// Key identifies the snapshot in logs and plots.
func (s *Snapshot) Key() string {
	// Plain concatenation: Key is on the per-verdict hot path of the
	// serving layer, where fmt's overhead is measurable.
	return s.Provider + "@" + s.Version + "(" + s.Date.Format("2006-01-02") + ")"
}

// History is a provider's time-ordered sequence of snapshots.
type History struct {
	Provider  string
	snapshots []*Snapshot
}

// NewHistory creates an empty history for a provider.
func NewHistory(provider string) *History { return &History{Provider: provider} }

// Append inserts a snapshot keeping the history date-ordered.
func (h *History) Append(s *Snapshot) error {
	if s.Provider != h.Provider {
		return fmt.Errorf("store: snapshot provider %q does not match history %q", s.Provider, h.Provider)
	}
	h.snapshots = append(h.snapshots, s)
	sort.SliceStable(h.snapshots, func(i, j int) bool {
		return h.snapshots[i].Date.Before(h.snapshots[j].Date)
	})
	return nil
}

// Len returns the number of snapshots.
func (h *History) Len() int { return len(h.snapshots) }

// Snapshots returns the date-ordered snapshots (shared, do not mutate order).
func (h *History) Snapshots() []*Snapshot {
	return append([]*Snapshot(nil), h.snapshots...)
}

// At returns the snapshot in force at the instant: the latest snapshot whose
// date is not after t, or nil when t precedes the history.
func (h *History) At(t time.Time) *Snapshot {
	var cur *Snapshot
	for _, s := range h.snapshots {
		if s.Date.After(t) {
			break
		}
		cur = s
	}
	return cur
}

// Latest returns the most recent snapshot, or nil for an empty history.
func (h *History) Latest() *Snapshot {
	if len(h.snapshots) == 0 {
		return nil
	}
	return h.snapshots[len(h.snapshots)-1]
}

// First returns the earliest snapshot, or nil for an empty history.
func (h *History) First() *Snapshot {
	if len(h.snapshots) == 0 {
		return nil
	}
	return h.snapshots[0]
}

// Range returns snapshots with Date in [from, to] inclusive.
func (h *History) Range(from, to time.Time) []*Snapshot {
	var out []*Snapshot
	for _, s := range h.snapshots {
		if !s.Date.Before(from) && !s.Date.After(to) {
			out = append(out, s)
		}
	}
	return out
}

// EverTrusted returns the union of fingerprints ever trusted for the purpose
// across the history — the basis of the exclusive-roots analysis (Table 6).
func (h *History) EverTrusted(p Purpose) map[certutil.Fingerprint]bool {
	set := make(map[certutil.Fingerprint]bool)
	for _, s := range h.snapshots {
		for _, e := range s.entries {
			if e.TrustedFor(p) {
				set[e.Fingerprint] = true
			}
		}
	}
	return set
}

// TrustedUntil returns, for a fingerprint, the date of the last snapshot that
// still trusted it for the purpose, and whether it is still trusted in the
// latest snapshot. This drives the removal-lag analysis (Table 4).
func (h *History) TrustedUntil(fp certutil.Fingerprint, p Purpose) (last time.Time, stillTrusted bool, everTrusted bool) {
	for _, s := range h.snapshots {
		if e, ok := s.Lookup(fp); ok && e.TrustedFor(p) {
			last = s.Date
			everTrusted = true
			stillTrusted = true
		} else {
			stillTrusted = false
		}
	}
	if !everTrusted {
		return time.Time{}, false, false
	}
	return last, stillTrusted, true
}

// FirstTrusted returns the date of the first snapshot trusting fp for p.
func (h *History) FirstTrusted(fp certutil.Fingerprint, p Purpose) (time.Time, bool) {
	for _, s := range h.snapshots {
		if e, ok := s.Lookup(fp); ok && e.TrustedFor(p) {
			return s.Date, true
		}
	}
	return time.Time{}, false
}

// Database maps providers to histories — the paper's whole dataset.
type Database struct {
	histories map[string]*History
	interner  *Interner
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{histories: make(map[string]*History), interner: NewInterner()}
}

// Interner returns the database's fingerprint interner. Every snapshot
// filed via AddSnapshot shares it, so their TrustedBits are
// ID-compatible.
func (db *Database) Interner() *Interner { return db.interner }

// AddSnapshot files a snapshot under its provider, creating the history on
// first use.
func (db *Database) AddSnapshot(s *Snapshot) error {
	h, ok := db.histories[s.Provider]
	if !ok {
		h = NewHistory(s.Provider)
		db.histories[s.Provider] = h
	}
	if err := h.Append(s); err != nil {
		return err
	}
	s.attachInterner(db.interner)
	return nil
}

// History returns the provider's history, or nil if absent.
func (db *Database) History(provider string) *History { return db.histories[provider] }

// Providers returns the provider names, sorted.
func (db *Database) Providers() []string {
	out := make([]string, 0, len(db.histories))
	for p := range db.histories {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TotalSnapshots counts snapshots across all providers (the paper's 619).
func (db *Database) TotalSnapshots() int {
	n := 0
	for _, h := range db.histories {
		n += h.Len()
	}
	return n
}

// AllSnapshots returns every snapshot, ordered by provider then date.
func (db *Database) AllSnapshots() []*Snapshot {
	var out []*Snapshot
	for _, p := range db.Providers() {
		out = append(out, db.histories[p].Snapshots()...)
	}
	return out
}

// UniqueRoots counts distinct fingerprints ever trusted for the purpose by
// the provider (Table 2's "# Uniq" column counts distinct certificates).
func (db *Database) UniqueRoots(provider string, p Purpose) int {
	h := db.History(provider)
	if h == nil {
		return 0
	}
	return len(h.EverTrusted(p))
}
