// Package store defines the unified trust-anchor model every root-store
// codec parses into and every analysis stage consumes: trust entries with
// per-purpose trust levels and partial-distrust dates, dated snapshots,
// per-provider histories, and a multi-provider database.
//
// The model mirrors the paper's data design (§3.1): a *snapshot* is one root
// store at one point in time; each snapshot is a collection of *trust
// entries* pairing a certificate with any additional trust or distrust
// constraints (as NSS and Microsoft provide). Formats that cannot express
// constraints (PEM bundles, JKS, node_root_certs.h) simply produce entries
// whose every purpose is plainly Trusted — which is exactly the fidelity
// loss §6 of the paper investigates.
package store

import (
	"crypto/x509"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/certutil"
)

// Purpose is a trust purpose a root can be trusted for. The paper considers
// the three NSS purposes plus timestamping (which NSS never supported but
// NuGet infamously assumed, §7).
type Purpose uint8

// Trust purposes.
const (
	ServerAuth Purpose = iota
	EmailProtection
	CodeSigning
	TimeStamping
	numPurposes
)

// AllPurposes lists every purpose in stable order.
var AllPurposes = []Purpose{ServerAuth, EmailProtection, CodeSigning, TimeStamping}

var purposeNames = [...]string{"server-auth", "email-protection", "code-signing", "time-stamping"}

// String returns the kebab-case purpose name.
func (p Purpose) String() string {
	if int(p) < len(purposeNames) {
		return purposeNames[p]
	}
	return fmt.Sprintf("purpose(%d)", uint8(p))
}

// ParsePurpose is the inverse of String.
func ParsePurpose(s string) (Purpose, error) {
	for i, n := range purposeNames {
		if n == s {
			return Purpose(i), nil
		}
	}
	return 0, fmt.Errorf("store: unknown purpose %q", s)
}

// TrustLevel is the trust a store assigns a root for one purpose, matching
// NSS's three levels (trusted delegator, must verify, not trusted).
type TrustLevel uint8

// Trust levels. The zero value Unspecified means the store says nothing for
// the purpose, which formats without trust metadata produce for non-TLS
// purposes.
const (
	Unspecified TrustLevel = iota
	Trusted
	MustVerify
	Distrusted
)

var levelNames = [...]string{"unspecified", "trusted", "must-verify", "distrusted"}

// String returns the kebab-case level name.
func (l TrustLevel) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseTrustLevel is the inverse of String.
func ParseTrustLevel(s string) (TrustLevel, error) {
	for i, n := range levelNames {
		if n == s {
			return TrustLevel(i), nil
		}
	}
	return 0, fmt.Errorf("store: unknown trust level %q", s)
}

// TrustEntry pairs a root certificate with the store's trust decisions.
type TrustEntry struct {
	// DER is the certificate's raw encoding; Cert the parsed form.
	DER  []byte
	Cert *x509.Certificate
	// Fingerprint is the SHA-256 of DER, the entry's identity.
	Fingerprint certutil.Fingerprint
	// Label is the store's human-readable name for the root (CKA_LABEL,
	// JKS alias, file name); may be empty.
	Label string
	// Trust holds the per-purpose trust level. Missing keys mean
	// Unspecified.
	Trust map[Purpose]TrustLevel
	// DistrustAfter holds NSS-style partial distrust: certificates issued
	// by this root after the date are not trusted for the purpose, while
	// earlier issuance remains trusted (CKA_NSS_SERVER_DISTRUST_AFTER).
	DistrustAfter map[Purpose]time.Time
}

// NewEntry parses DER and returns an entry with no trust decisions attached.
func NewEntry(der []byte) (*TrustEntry, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("store: parse certificate: %w", err)
	}
	return &TrustEntry{
		DER:         append([]byte(nil), der...),
		Cert:        cert,
		Fingerprint: certutil.SHA256Fingerprint(der),
		Label:       certutil.DisplayName(cert),
		Trust:       make(map[Purpose]TrustLevel),
	}, nil
}

// NewTrustedEntry parses DER and marks it Trusted for the given purposes —
// the semantics of a bare certificate list like a PEM bundle.
func NewTrustedEntry(der []byte, purposes ...Purpose) (*TrustEntry, error) {
	e, err := NewEntry(der)
	if err != nil {
		return nil, err
	}
	for _, p := range purposes {
		e.Trust[p] = Trusted
	}
	return e, nil
}

// TrustFor returns the trust level for a purpose (Unspecified if absent).
func (e *TrustEntry) TrustFor(p Purpose) TrustLevel { return e.Trust[p] }

// SetTrust records a trust level for a purpose.
func (e *TrustEntry) SetTrust(p Purpose, l TrustLevel) {
	if e.Trust == nil {
		e.Trust = make(map[Purpose]TrustLevel)
	}
	e.Trust[p] = l
}

// SetDistrustAfter records a partial-distrust date for a purpose.
func (e *TrustEntry) SetDistrustAfter(p Purpose, t time.Time) {
	if e.DistrustAfter == nil {
		e.DistrustAfter = make(map[Purpose]time.Time)
	}
	e.DistrustAfter[p] = t
}

// DistrustAfterFor returns the partial-distrust date for a purpose, if any.
func (e *TrustEntry) DistrustAfterFor(p Purpose) (time.Time, bool) {
	t, ok := e.DistrustAfter[p]
	return t, ok
}

// TrustedFor reports whether the entry is a full trust anchor for the
// purpose. Partial distrust does not negate anchor status — the root stays
// in the store and older issuance is still accepted.
func (e *TrustEntry) TrustedFor(p Purpose) bool { return e.Trust[p] == Trusted }

// Clone deep-copies the entry (the parsed certificate is shared; it is
// immutable by convention).
func (e *TrustEntry) Clone() *TrustEntry {
	c := &TrustEntry{
		DER:         append([]byte(nil), e.DER...),
		Cert:        e.Cert,
		Fingerprint: e.Fingerprint,
		Label:       e.Label,
		Trust:       make(map[Purpose]TrustLevel, len(e.Trust)),
	}
	for p, l := range e.Trust {
		c.Trust[p] = l
	}
	if len(e.DistrustAfter) > 0 {
		c.DistrustAfter = make(map[Purpose]time.Time, len(e.DistrustAfter))
		for p, t := range e.DistrustAfter {
			c.DistrustAfter[p] = t
		}
	}
	return c
}

// String summarizes the entry for logs.
func (e *TrustEntry) String() string {
	var trusts []string
	for _, p := range AllPurposes {
		if l, ok := e.Trust[p]; ok && l != Unspecified {
			s := fmt.Sprintf("%s=%s", p, l)
			if t, ok := e.DistrustAfter[p]; ok {
				s += fmt.Sprintf("(distrust-after %s)", t.Format("2006-01-02"))
			}
			trusts = append(trusts, s)
		}
	}
	return fmt.Sprintf("%s %s [%s]", e.Fingerprint.Short(), e.Label, strings.Join(trusts, ", "))
}

// sortEntries orders entries deterministically by fingerprint.
func sortEntries(entries []*TrustEntry) {
	sort.Slice(entries, func(i, j int) bool {
		return strings.Compare(entries[i].Fingerprint.String(), entries[j].Fingerprint.String()) < 0
	})
}
