package store

// This file holds the fingerprint interner: the bridge between the
// 32-byte SHA-256 fingerprints the model is keyed by and the dense uint32
// IDs the bitset-backed analysis hot path operates on. A Database owns
// one interner shared by every snapshot filed under it, so any two
// snapshots from the same database produce ID-compatible bitsets.

import (
	"sync"

	"repro/internal/bitset"
	"repro/internal/certutil"
)

// Interner assigns dense uint32 IDs to fingerprints on first sight. It is
// safe for concurrent use; IDs are stable for the interner's lifetime.
type Interner struct {
	mu  sync.RWMutex
	ids map[certutil.Fingerprint]uint32
	fps []certutil.Fingerprint
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[certutil.Fingerprint]uint32)}
}

// ID returns the dense ID for fp, assigning the next free one on first
// sight.
func (in *Interner) ID(fp certutil.Fingerprint) uint32 {
	in.mu.RLock()
	id, ok := in.ids[fp]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok = in.ids[fp]; ok {
		return id
	}
	id = uint32(len(in.fps))
	in.ids[fp] = id
	in.fps = append(in.fps, fp)
	return id
}

// LookupID returns the ID previously assigned to fp, if any, without
// assigning one.
func (in *Interner) LookupID(fp certutil.Fingerprint) (uint32, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[fp]
	return id, ok
}

// FingerprintOf is the inverse of ID.
func (in *Interner) FingerprintOf(id uint32) (certutil.Fingerprint, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.fps) {
		return certutil.Fingerprint{}, false
	}
	return in.fps[id], true
}

// Len returns how many distinct fingerprints have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.fps)
}

// FingerprintSet converts a bitset of interned IDs back to the map form
// the reference analyses consume.
func (in *Interner) FingerprintSet(s *bitset.Set) map[certutil.Fingerprint]bool {
	out := make(map[certutil.Fingerprint]bool, s.Count())
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, id := range s.IDs() {
		if int(id) < len(in.fps) {
			out[in.fps[id]] = true
		}
	}
	return out
}
