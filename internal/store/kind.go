package store

import "fmt"

// Kind classifies the trust ecosystem a snapshot belongs to. The paper's
// thirteen providers are all TLS root programs, but the trust-anchor
// universe is wider: Certificate Transparency logs publish accepted-root
// lists, and manifest-driven bundles (tpm-ca-certificates style) carry
// vendor attestation roots entirely outside the web PKI. Kind is the one
// tag that distinguishes them; everything else about a snapshot — entries,
// purposes, interning, archiving, serving — is kind-agnostic.
type Kind string

// Snapshot kinds. The zero value ("") normalizes to KindTLS so every
// snapshot created before the field existed (and every archive written
// before the kinds section existed) keeps its meaning unchanged.
const (
	KindTLS      Kind = "tls"      // a TLS root program or derivative store
	KindCT       Kind = "ct"       // a CT log's accepted-root list
	KindManifest Kind = "manifest" // a YAML-manifest bundle (TPM vendor roots)
)

// Normalize maps the zero value to KindTLS and returns any other kind
// unchanged.
func (k Kind) Normalize() Kind {
	if k == "" {
		return KindTLS
	}
	return k
}

// String returns the normalized kind tag.
func (k Kind) String() string { return string(k.Normalize()) }

// ParseKind validates a kind tag from the wire ("" is accepted as tls).
func ParseKind(s string) (Kind, error) {
	switch k := Kind(s).Normalize(); k {
	case KindTLS, KindCT, KindManifest:
		return k, nil
	default:
		return "", fmt.Errorf("store: unknown snapshot kind %q", s)
	}
}
