package plist

import "testing"

// FuzzUnmarshal hardens the XML plist decoder.
func FuzzUnmarshal(f *testing.F) {
	seed, err := Marshal(Dict{"k": "v", "n": int64(3), "a": Array{true, []byte{1}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("<plist><dict/></plist>"))
	f.Add([]byte("<plist><integer>1e9</integer></plist>"))
	f.Add([]byte("not xml at all"))
	f.Add([]byte("<plist><array><string>&amp;</string></array></plist>"))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(data)
		if err != nil {
			return
		}
		if _, err := Marshal(v); err != nil {
			t.Fatalf("re-marshal of parsed plist failed: %v", err)
		}
	})
}
