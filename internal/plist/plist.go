// Package plist implements the subset of Apple's XML property-list format
// needed to express keychain trust settings: dict, array, string, integer,
// real, boolean, date and data values. It is a standalone substrate so the
// Apple root-store codec can read and write trust-settings documents
// without any platform dependency.
package plist

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Value is a plist value: one of
// map[string]Value, []Value, string, int64, float64, bool, time.Time, []byte.
type Value any

// Dict is the plist dictionary type.
type Dict = map[string]Value

// Array is the plist array type.
type Array = []Value

const (
	header = xml.Header +
		"<!DOCTYPE plist PUBLIC \"-//Apple//DTD PLIST 1.0//EN\" \"http://www.apple.com/DTDs/PropertyList-1.0.dtd\">\n"
	dateLayout = "2006-01-02T15:04:05Z"
)

// Marshal renders a value as a complete XML plist document.
func Marshal(v Value) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(header)
	buf.WriteString("<plist version=\"1.0\">\n")
	if err := encodeValue(&buf, v, 0); err != nil {
		return nil, err
	}
	buf.WriteString("</plist>\n")
	return buf.Bytes(), nil
}

func indent(buf *bytes.Buffer, depth int) {
	for i := 0; i < depth; i++ {
		buf.WriteByte('\t')
	}
}

func encodeValue(buf *bytes.Buffer, v Value, depth int) error {
	indent(buf, depth)
	switch x := v.(type) {
	case Dict:
		if len(x) == 0 {
			buf.WriteString("<dict/>\n")
			return nil
		}
		buf.WriteString("<dict>\n")
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			indent(buf, depth+1)
			fmt.Fprintf(buf, "<key>%s</key>\n", escape(k))
			if err := encodeValue(buf, x[k], depth+1); err != nil {
				return err
			}
		}
		indent(buf, depth)
		buf.WriteString("</dict>\n")
	case Array:
		if len(x) == 0 {
			buf.WriteString("<array/>\n")
			return nil
		}
		buf.WriteString("<array>\n")
		for _, el := range x {
			if err := encodeValue(buf, el, depth+1); err != nil {
				return err
			}
		}
		indent(buf, depth)
		buf.WriteString("</array>\n")
	case string:
		fmt.Fprintf(buf, "<string>%s</string>\n", escape(x))
	case int:
		fmt.Fprintf(buf, "<integer>%d</integer>\n", x)
	case int64:
		fmt.Fprintf(buf, "<integer>%d</integer>\n", x)
	case float64:
		fmt.Fprintf(buf, "<real>%g</real>\n", x)
	case bool:
		if x {
			buf.WriteString("<true/>\n")
		} else {
			buf.WriteString("<false/>\n")
		}
	case time.Time:
		fmt.Fprintf(buf, "<date>%s</date>\n", x.UTC().Format(dateLayout))
	case []byte:
		buf.WriteString("<data>\n")
		enc := base64.StdEncoding.EncodeToString(x)
		for i := 0; i < len(enc); i += 68 {
			end := i + 68
			if end > len(enc) {
				end = len(enc)
			}
			indent(buf, depth)
			buf.WriteString(enc[i:end])
			buf.WriteByte('\n')
		}
		indent(buf, depth)
		buf.WriteString("</data>\n")
	default:
		return fmt.Errorf("plist: unsupported value type %T", v)
	}
	return nil
}

func escape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// Unmarshal parses an XML plist document into a Value.
func Unmarshal(data []byte) (Value, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	// Find the <plist> element, then its first child element.
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("plist: no <plist> element: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Local != "plist" {
				return nil, fmt.Errorf("plist: unexpected root element <%s>", se.Name.Local)
			}
			break
		}
	}
	v, err := decodeNext(dec)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// decodeNext reads the next value element from the decoder.
func decodeNext(dec *xml.Decoder) (Value, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("plist: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return decodeElement(dec, t)
		case xml.EndElement:
			return nil, fmt.Errorf("plist: unexpected </%s>", t.Name.Local)
		}
	}
}

func decodeElement(dec *xml.Decoder, se xml.StartElement) (Value, error) {
	switch se.Name.Local {
	case "dict":
		return decodeDict(dec, se)
	case "array":
		return decodeArray(dec, se)
	case "string":
		s, err := readText(dec, se)
		return s, err
	case "integer":
		s, err := readText(dec, se)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("plist: bad integer %q: %w", s, err)
		}
		return n, nil
	case "real":
		s, err := readText(dec, se)
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("plist: bad real %q: %w", s, err)
		}
		return f, nil
	case "true":
		if err := dec.Skip(); err != nil {
			return nil, err
		}
		return true, nil
	case "false":
		if err := dec.Skip(); err != nil {
			return nil, err
		}
		return false, nil
	case "date":
		s, err := readText(dec, se)
		if err != nil {
			return nil, err
		}
		t, err := time.Parse(dateLayout, strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("plist: bad date %q: %w", s, err)
		}
		return t, nil
	case "data":
		s, err := readText(dec, se)
		if err != nil {
			return nil, err
		}
		clean := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\n' || r == '\t' || r == '\r' {
				return -1
			}
			return r
		}, s)
		b, err := base64.StdEncoding.DecodeString(clean)
		if err != nil {
			return nil, fmt.Errorf("plist: bad data: %w", err)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("plist: unsupported element <%s>", se.Name.Local)
	}
}

func readText(dec *xml.Decoder, se xml.StartElement) (string, error) {
	var sb strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("plist: in <%s>: %w", se.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			return sb.String(), nil
		case xml.StartElement:
			return "", fmt.Errorf("plist: unexpected <%s> inside <%s>", t.Name.Local, se.Name.Local)
		}
	}
}

func decodeDict(dec *xml.Decoder, se xml.StartElement) (Value, error) {
	d := Dict{}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("plist: in dict: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "key" {
				return nil, fmt.Errorf("plist: expected <key> in dict, got <%s>", t.Name.Local)
			}
			key, err := readText(dec, t)
			if err != nil {
				return nil, err
			}
			val, err := decodeNext(dec)
			if err != nil {
				return nil, err
			}
			d[key] = val
		case xml.EndElement:
			return d, nil
		}
	}
}

func decodeArray(dec *xml.Decoder, se xml.StartElement) (Value, error) {
	a := Array{}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("plist: in array: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			v, err := decodeElement(dec, t)
			if err != nil {
				return nil, err
			}
			a = append(a, v)
		case xml.EndElement:
			return a, nil
		}
	}
}

// Write marshals v to w.
func Write(w io.Writer, v Value) error {
	data, err := Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
