package plist

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", v, err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\ndoc:\n%s", err, data)
	}
	return out
}

func TestScalars(t *testing.T) {
	cases := []Value{
		"hello",
		"with <angle> & amp",
		int64(42),
		int64(-7),
		3.5,
		true,
		false,
		time.Date(2021, 2, 1, 12, 30, 0, 0, time.UTC),
		[]byte{0, 1, 2, 253, 254, 255},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if tm, ok := v.(time.Time); ok {
			if !got.(time.Time).Equal(tm) {
				t.Errorf("time round trip: %v != %v", got, v)
			}
			continue
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %T: %v != %v", v, got, v)
		}
	}
}

func TestIntPromotion(t *testing.T) {
	got := roundTrip(t, 7) // plain int marshals, comes back int64
	if got != int64(7) {
		t.Errorf("int came back as %T %v", got, got)
	}
}

func TestDict(t *testing.T) {
	in := Dict{
		"name":    "root",
		"version": int64(3),
		"ok":      true,
		"nested":  Dict{"a": int64(1)},
		"list":    Array{"x", int64(2)},
	}
	got := roundTrip(t, in).(Dict)
	if !reflect.DeepEqual(got, in) {
		t.Errorf("dict round trip:\n got %#v\nwant %#v", got, in)
	}
}

func TestEmptyContainers(t *testing.T) {
	d := roundTrip(t, Dict{}).(Dict)
	if len(d) != 0 {
		t.Errorf("empty dict came back with %d keys", len(d))
	}
	a := roundTrip(t, Array{}).(Array)
	if len(a) != 0 {
		t.Errorf("empty array came back with %d items", len(a))
	}
}

func TestDeterministicKeyOrder(t *testing.T) {
	in := Dict{"zebra": int64(1), "apple": int64(2), "mid": int64(3)}
	a, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("Marshal not deterministic")
	}
	if strings.Index(string(a), "apple") > strings.Index(string(a), "zebra") {
		t.Error("keys not sorted")
	}
}

func TestLargeDataWraps(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	got := roundTrip(t, data).([]byte)
	if !reflect.DeepEqual(got, data) {
		t.Error("large data round trip failed")
	}
}

func TestMarshalUnsupportedType(t *testing.T) {
	if _, err := Marshal(struct{}{}); err == nil {
		t.Error("struct should be unsupported")
	}
	if _, err := Marshal(Dict{"k": struct{}{}}); err == nil {
		t.Error("nested unsupported type should error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"not plist", "<?xml version=\"1.0\"?><other/>"},
		{"bad integer", "<plist><integer>xyz</integer></plist>"},
		{"bad real", "<plist><real>xyz</real></plist>"},
		{"bad date", "<plist><date>notadate</date></plist>"},
		{"bad data", "<plist><data>!!!</data></plist>"},
		{"dict without key", "<plist><dict><string>v</string></dict></plist>"},
		{"unknown element", "<plist><wat/></plist>"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Unmarshal([]byte(c.doc)); err == nil {
				t.Errorf("Unmarshal(%s) should fail", c.name)
			}
		})
	}
}

func TestUnmarshalRealAppleStyleDoc(t *testing.T) {
	doc := `<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE plist PUBLIC "-//Apple//DTD PLIST 1.0//EN" "http://www.apple.com/DTDs/PropertyList-1.0.dtd">
<plist version="1.0">
<dict>
	<key>trustList</key>
	<dict>
		<key>abc123</key>
		<array>
			<dict>
				<key>kSecTrustSettingsPolicy</key>
				<string>sslServer</string>
				<key>kSecTrustSettingsResult</key>
				<integer>1</integer>
			</dict>
		</array>
	</dict>
	<key>trustVersion</key>
	<integer>1</integer>
</dict>
</plist>
`
	v, err := Unmarshal([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	root := v.(Dict)
	if root["trustVersion"] != int64(1) {
		t.Errorf("trustVersion = %v", root["trustVersion"])
	}
	tl := root["trustList"].(Dict)
	arr := tl["abc123"].(Array)
	rec := arr[0].(Dict)
	if rec["kSecTrustSettingsPolicy"] != "sslServer" {
		t.Errorf("policy = %v", rec["kSecTrustSettingsPolicy"])
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	prop := func(s string) bool {
		if !isValidXMLString(s) {
			return true
		}
		data, err := Marshal(s)
		if err != nil {
			return false
		}
		out, err := Unmarshal(data)
		return err == nil && out == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDataRoundTrip(t *testing.T) {
	prop := func(b []byte) bool {
		data, err := Marshal(b)
		if err != nil {
			return false
		}
		out, err := Unmarshal(data)
		if err != nil {
			return false
		}
		got := out.([]byte)
		if len(got) == 0 && len(b) == 0 {
			return true
		}
		return string(got) == string(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// isValidXMLString filters control characters and invalid UTF-8 that XML
// cannot carry.
func isValidXMLString(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
		if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
		// XML 1.0 excludes surrogates and certain non-characters.
		if r >= 0xD800 && r <= 0xDFFF {
			return false
		}
	}
	return true
}
