package trustroots

import (
	"io"
	"time"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/certdata"
	"repro/internal/jks"
	"repro/internal/nodecerts"
	"repro/internal/pemstore"
	"repro/internal/store"
)

// --- NSS certdata.txt ------------------------------------------------------

// CertdataResult is the outcome of parsing an NSS certdata.txt file.
type CertdataResult = certdata.ParseResult

// ParseCertdata reads an NSS certdata.txt stream: certificates, per-purpose
// trust levels, and partial-distrust (server/email distrust-after)
// annotations.
func ParseCertdata(r io.Reader) (*CertdataResult, error) { return certdata.Parse(r) }

// WriteCertdata serializes entries as a certdata.txt document.
func WriteCertdata(w io.Writer, entries []*TrustEntry) error { return certdata.Marshal(w, entries) }

// --- Linux PEM bundles and directories --------------------------------------

// ParsePEMBundle reads a concatenated PEM bundle, marking every certificate
// trusted for the listed purposes (the format carries no trust metadata).
func ParsePEMBundle(r io.Reader, purposes ...Purpose) ([]*TrustEntry, error) {
	return pemstore.ParseBundle(r, purposes...)
}

// WritePEMBundle writes entries trusted for any filter purpose as a PEM
// bundle; trust metadata — including partial distrust — is irrecoverably
// dropped, which is the derivative-format limitation §6 of the paper
// documents.
func WritePEMBundle(w io.Writer, entries []*TrustEntry, filter ...Purpose) error {
	return pemstore.WriteBundle(w, entries, filter...)
}

// ReadPEMDir reads a /usr/share/ca-certificates-style directory.
func ReadPEMDir(dir string, purposes ...Purpose) ([]*TrustEntry, error) {
	return pemstore.ReadDir(dir, purposes...)
}

// WritePEMDir writes one PEM file per entry into dir.
func WritePEMDir(dir string, entries []*TrustEntry, filter ...Purpose) error {
	return pemstore.WriteDir(dir, entries, filter...)
}

// WritePurposeBundles writes single-purpose PEM bundles (tls-ca-bundle.pem,
// email-ca-bundle.pem, objsign-ca-bundle.pem) into dir — the RHEL-style
// layout the paper's §7 recommends.
func WritePurposeBundles(dir string, entries []*TrustEntry) error {
	return pemstore.WritePurposeBundles(dir, entries)
}

// ReadPurposeBundles reads a purpose-split directory, reconstructing
// per-purpose trust.
func ReadPurposeBundles(dir string) ([]*TrustEntry, error) {
	return pemstore.ReadPurposeBundles(dir)
}

// --- Java JKS ----------------------------------------------------------------

// JKSKeystore is a parsed Java keystore of trusted certificates.
type JKSKeystore = jks.Keystore

// ParseJKS deserializes a JKS v2 keystore, verifying its integrity digest.
func ParseJKS(data []byte, password string) (*JKSKeystore, error) {
	return jks.Parse(data, password)
}

// WriteJKS serializes entries (filtered by purpose, all when empty) as a
// JKS keystore.
func WriteJKS(entries []*TrustEntry, password string, created time.Time, filter ...Purpose) ([]byte, error) {
	return jks.Marshal(jks.FromEntries(entries, created, filter...), password)
}

// JKSEntries converts keystore entries to trust entries marked trusted for
// the given purposes (Java's cacerts conflates all of them).
func JKSEntries(ks *JKSKeystore, purposes ...Purpose) ([]*TrustEntry, error) {
	return ks.ToEntries(purposes...)
}

// --- Microsoft authroot -------------------------------------------------------

// AuthrootCTL is a parsed Microsoft certificate trust list.
type AuthrootCTL = authroot.CTL

// WriteAuthrootBundle writes entries as an authroot.stl + certs/ bundle.
func WriteAuthrootBundle(dir string, entries []*TrustEntry, sequence int64, thisUpdate time.Time) error {
	return authroot.WriteBundle(dir, entries, sequence, thisUpdate)
}

// ReadAuthrootBundle reads an authroot bundle; subjects whose certificate
// file is absent are reported in missing rather than failing.
func ReadAuthrootBundle(dir string) (entries []*TrustEntry, missing []string, err error) {
	return authroot.ReadBundle(dir)
}

// --- Apple roots directory -----------------------------------------------------

// WriteAppleDir writes entries as an Apple-style roots directory with an
// optional trust-settings plist for non-default trust.
func WriteAppleDir(dir string, entries []*TrustEntry) error {
	return applestore.WriteDir(dir, entries)
}

// ReadAppleDir reads an Apple-style roots directory.
func ReadAppleDir(dir string) ([]*TrustEntry, error) { return applestore.ReadDir(dir) }

// --- NodeJS node_root_certs.h ----------------------------------------------------

// ParseNodeCerts reads a node_root_certs.h document.
func ParseNodeCerts(r io.Reader) ([]*TrustEntry, error) { return nodecerts.Parse(r) }

// WriteNodeCerts writes TLS-trusted entries as a node_root_certs.h document.
func WriteNodeCerts(w io.Writer, entries []*TrustEntry) error {
	return nodecerts.Marshal(w, entries)
}

// SnapshotFromEntries bundles entries into a dated snapshot, a convenience
// for assembling parsed files into the database.
func SnapshotFromEntries(provider, version string, date time.Time, entries []*TrustEntry) *Snapshot {
	s := store.NewSnapshot(provider, version, date)
	for _, e := range entries {
		s.Add(e)
	}
	return s
}
