// Package trustroots is a toolkit for collecting, parsing, comparing and
// analyzing TLS trust-anchor stores ("root stores"), reproducing the
// measurement pipeline of "Tracing Your Roots: Exploring the TLS Trust
// Anchor Ecosystem" (IMC 2021).
//
// The library has four layers:
//
//   - Format codecs for every root-store format the paper collected:
//     NSS certdata.txt, Microsoft authroot.stl bundles, Apple roots
//     directories, Linux PEM bundles/directories, Java JKS keystores and
//     NodeJS node_root_certs.h (see formats.go).
//
//   - A unified trust model (TrustEntry / Snapshot / History / Database)
//     with per-purpose trust levels and NSS-style partial distrust.
//
//   - The analysis pipeline regenerating the paper's evaluation: UA→store
//     mapping (Table 1), ordination clustering (Figure 1), the ecosystem
//     pyramid (Figure 2), hygiene metrics (Table 3), removal-lag analysis
//     (Table 4), derivative staleness (Figure 3) and diffs (Figure 4),
//     exclusive roots (Table 6) and the NSS removal catalog (Table 7).
//
//   - A synthetic ecosystem generator, calibrated to the paper's published
//     ground truth, standing in for the proprietary archives the authors
//     scraped; and a purpose-aware chain verifier that turns store
//     differences into observable TLS authentication outcomes.
//
// Quick start:
//
//	eco, err := trustroots.GenerateEcosystem("my-seed")
//	if err != nil { ... }
//	pipe := trustroots.NewPipeline(eco.DB)
//	for _, row := range pipe.Hygiene(trustroots.IndependentPrograms) {
//	    fmt.Printf("%s: %.1f roots avg\n", row.Program, row.AvgSize)
//	}
package trustroots

import (
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/store"
	"repro/internal/synth"
)

// Trust model re-exports.
type (
	// Purpose is a trust purpose (server auth, email, code signing,
	// timestamping).
	Purpose = store.Purpose
	// TrustLevel is a store's per-purpose decision for a root.
	TrustLevel = store.TrustLevel
	// TrustEntry pairs a root certificate with trust metadata.
	TrustEntry = store.TrustEntry
	// Snapshot is one root store at one point in time.
	Snapshot = store.Snapshot
	// History is a provider's dated snapshot sequence.
	History = store.History
	// Database maps providers to histories.
	Database = store.Database
	// Diff is a snapshot-to-snapshot difference.
	Diff = store.Diff
)

// Purposes.
const (
	ServerAuth      = store.ServerAuth
	EmailProtection = store.EmailProtection
	CodeSigning     = store.CodeSigning
	TimeStamping    = store.TimeStamping
)

// Trust levels.
const (
	Unspecified = store.Unspecified
	Trusted     = store.Trusted
	MustVerify  = store.MustVerify
	Distrusted  = store.Distrusted
)

// Model constructors.
var (
	NewEntry        = store.NewEntry
	NewTrustedEntry = store.NewTrustedEntry
	NewSnapshot     = store.NewSnapshot
	NewHistory      = store.NewHistory
	NewDatabase     = store.NewDatabase
	DiffSnapshots   = store.DiffSnapshots
	SetDiff         = store.SetDiff
)

// Provider names used throughout the dataset.
const (
	NSS         = paperdata.NSS
	Microsoft   = paperdata.Microsoft
	Apple       = paperdata.Apple
	Java        = paperdata.Java
	Android     = paperdata.Android
	NodeJS      = paperdata.NodeJS
	Debian      = paperdata.Debian
	Ubuntu      = paperdata.Ubuntu
	Alpine      = paperdata.Alpine
	AmazonLinux = paperdata.AmazonLinux
)

// IndependentPrograms lists the four root programs (Figure 1's clusters).
var IndependentPrograms = paperdata.IndependentPrograms

// Derivatives lists the NSS-derived providers in the dataset.
var Derivatives = paperdata.Derivatives

// Ecosystem is a generated synthetic corpus: the CA universe plus the full
// ten-provider snapshot database.
type Ecosystem = synth.Ecosystem

// GenerateEcosystem builds the synthetic root-store ecosystem
// deterministically from a seed (see DESIGN.md for the substitution this
// makes for the paper's proprietary inputs).
func GenerateEcosystem(seed string) (*Ecosystem, error) { return synth.Generate(seed) }

// CachedEcosystem returns a process-shared, read-only ecosystem for the
// seed; use GenerateEcosystem for a private mutable copy.
func CachedEcosystem(seed string) (*Ecosystem, error) { return synth.Cached(seed) }

// Pipeline is the paper's analysis pipeline over a snapshot database.
type Pipeline = core.Pipeline

// NewPipeline creates an analysis pipeline with the paper's defaults
// (TLS server authentication, derivative→Mozilla family lineage).
func NewPipeline(db *Database) *Pipeline { return core.New(db) }
