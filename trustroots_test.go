package trustroots_test

// Facade-level tests: exercise the public API surface end to end the way a
// downstream consumer would, independent of the benchmark harness.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	trustroots "repro"
)

func facadeEco(t testing.TB) *trustroots.Ecosystem {
	t.Helper()
	eco, err := trustroots.CachedEcosystem("bench") // share the bench fixture
	if err != nil {
		t.Fatal(err)
	}
	return eco
}

func TestFacadeModelConstruction(t *testing.T) {
	eco := facadeEco(t)
	der := eco.Universe.CAs[0].Root.DER

	e, err := trustroots.NewTrustedEntry(der, trustroots.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	if !e.TrustedFor(trustroots.ServerAuth) {
		t.Error("entry should be TLS-trusted")
	}

	s := trustroots.NewSnapshot("Mine", "v1", time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	s.Add(e)
	db := trustroots.NewDatabase()
	if err := db.AddSnapshot(s); err != nil {
		t.Fatal(err)
	}
	if db.TotalSnapshots() != 1 {
		t.Error("database bookkeeping wrong")
	}

	d := trustroots.DiffSnapshots(s, s.Clone())
	if !d.Empty() {
		t.Error("self diff should be empty")
	}
}

func TestFacadeCertdataRoundTrip(t *testing.T) {
	eco := facadeEco(t)
	nss := eco.DB.History(trustroots.NSS).Latest()
	var buf bytes.Buffer
	if err := trustroots.WriteCertdata(&buf, nss.Entries()); err != nil {
		t.Fatal(err)
	}
	res, err := trustroots.ParseCertdata(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != nss.Len() {
		t.Errorf("round trip: %d entries, want %d", len(res.Entries), nss.Len())
	}
}

func TestFacadeAllFormats(t *testing.T) {
	eco := facadeEco(t)
	entries := eco.DB.History(trustroots.NSS).Latest().Entries()[:5]
	tmp := t.TempDir()

	// PEM
	var pemBuf bytes.Buffer
	if err := trustroots.WritePEMBundle(&pemBuf, entries); err != nil {
		t.Fatal(err)
	}
	if out, err := trustroots.ParsePEMBundle(&pemBuf, trustroots.ServerAuth); err != nil || len(out) != 5 {
		t.Fatalf("pem: %v, %d", err, len(out))
	}
	// PEM dir
	if err := trustroots.WritePEMDir(filepath.Join(tmp, "pemdir"), entries); err != nil {
		t.Fatal(err)
	}
	if out, err := trustroots.ReadPEMDir(filepath.Join(tmp, "pemdir"), trustroots.ServerAuth); err != nil || len(out) != 5 {
		t.Fatalf("pemdir: %v, %d", err, len(out))
	}
	// JKS
	data, err := trustroots.WriteJKS(entries, "pw", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	ks, err := trustroots.ParseJKS(data, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if jksEntries, err := trustroots.JKSEntries(ks, trustroots.ServerAuth); err != nil || len(jksEntries) != 5 {
		t.Fatalf("jks: %v, %d", err, len(jksEntries))
	}
	// Authroot
	authDir := filepath.Join(tmp, "authroot")
	if err := trustroots.WriteAuthrootBundle(authDir, entries, 1, time.Now()); err != nil {
		t.Fatal(err)
	}
	if out, missing, err := trustroots.ReadAuthrootBundle(authDir); err != nil || len(missing) != 0 || len(out) != 5 {
		t.Fatalf("authroot: %v, %d missing, %d entries", err, len(missing), len(out))
	}
	// Apple
	appleDir := filepath.Join(tmp, "apple")
	if err := trustroots.WriteAppleDir(appleDir, entries); err != nil {
		t.Fatal(err)
	}
	if out, err := trustroots.ReadAppleDir(appleDir); err != nil || len(out) != 5 {
		t.Fatalf("apple: %v, %d", err, len(out))
	}
	// Node
	var nodeBuf bytes.Buffer
	if err := trustroots.WriteNodeCerts(&nodeBuf, entries); err != nil {
		t.Fatal(err)
	}
	if out, err := trustroots.ParseNodeCerts(&nodeBuf); err != nil {
		t.Fatalf("node: %v", err)
	} else {
		tlsCount := 0
		for _, e := range entries {
			if e.TrustedFor(trustroots.ServerAuth) {
				tlsCount++
			}
		}
		if len(out) != tlsCount {
			t.Fatalf("node: %d entries, want %d", len(out), tlsCount)
		}
	}
	// Purpose-split bundles
	splitDir := filepath.Join(tmp, "split")
	if err := trustroots.WritePurposeBundles(splitDir, entries); err != nil {
		t.Fatal(err)
	}
	if out, err := trustroots.ReadPurposeBundles(splitDir); err != nil || len(out) == 0 {
		t.Fatalf("split: %v, %d", err, len(out))
	}
}

func TestFacadeSnapshotFromEntries(t *testing.T) {
	eco := facadeEco(t)
	entries := eco.DB.History(trustroots.NSS).Latest().Entries()[:3]
	s := trustroots.SnapshotFromEntries("P", "v", time.Now(), entries)
	if s.Len() != 3 || s.Provider != "P" {
		t.Errorf("snapshot = %d entries, provider %q", s.Len(), s.Provider)
	}
}

func TestFacadeUserAgentPipeline(t *testing.T) {
	uas := trustroots.GenerateUAs(trustroots.PaperUASample())
	t1 := trustroots.AnalyzeUserAgents(uas)
	if t1.Included != 154 {
		t.Errorf("included = %d, want 154", t1.Included)
	}
	a := trustroots.ParseUserAgent("Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:86.0) Gecko/20100101 Firefox/86.0")
	m := trustroots.MapUserAgent(a)
	if string(m.Provider) != trustroots.NSS || !m.Traceable {
		t.Errorf("Firefox mapping = %+v", m)
	}
	f2 := trustroots.EcosystemShares(uas)
	if f2.Total != 200 {
		t.Errorf("shares total = %d", f2.Total)
	}
}

func TestFacadeVerification(t *testing.T) {
	eco := facadeEco(t)
	nss := eco.DB.History(trustroots.NSS).Latest()
	var anyTrusted *trustroots.TrustEntry
	for _, e := range nss.Entries() {
		if e.TrustedFor(trustroots.ServerAuth) {
			if _, hasDA := e.DistrustAfterFor(trustroots.ServerAuth); !hasDA {
				anyTrusted = e
				break
			}
		}
	}
	if anyTrusted == nil {
		t.Fatal("no unconstrained trusted root")
	}
	ca := eco.Universe.Lookup(anyTrusted.Label)
	if ca == nil {
		t.Fatalf("CA %q missing", anyTrusted.Label)
	}
	nb := nss.Date.AddDate(-1, 0, 0)
	leafDER, err := trustroots.IssueLeaf(ca, "facade.example.test", nb, nb.AddDate(3, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := trustroots.NewEntry(leafDER)
	if err != nil {
		t.Fatal(err)
	}
	v := trustroots.NewVerifier(nss)
	res := v.Verify(trustroots.VerifyRequest{
		Leaf:    leaf.Cert,
		Purpose: trustroots.ServerAuth,
		DNSName: "facade.example.test",
	})
	if res.Outcome != trustroots.VerifyOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Err)
	}
	if pool := trustroots.CertPoolFor(nss, trustroots.ServerAuth); pool == nil {
		t.Fatal("nil cert pool")
	}
}

func TestFacadeFingerprint(t *testing.T) {
	fp := trustroots.FingerprintOf([]byte{1, 2, 3})
	if len(fp.String()) != 64 {
		t.Error("fingerprint hex length wrong")
	}
}

func TestFacadeRenderArtifact(t *testing.T) {
	eco := facadeEco(t)
	var buf bytes.Buffer
	if err := trustroots.RenderArtifact(&buf, eco, "table6"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty artifact")
	}
	if err := trustroots.RenderArtifact(&buf, eco, "nope"); err == nil {
		t.Error("unknown artifact should error")
	}
}

func TestFacadeAuditAndEngineering(t *testing.T) {
	eco := facadeEco(t)
	pipe := trustroots.NewPipeline(eco.DB)

	report, err := pipe.AuditDerivative(trustroots.AmazonLinux, trustroots.NSS,
		time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC), trustroots.AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if report.CountByKind()[trustroots.FindingRetainedRemoval] == 0 {
		t.Error("audit should flag retained removals")
	}

	nss := eco.DB.History(trustroots.NSS).Latest()
	split := trustroots.SplitByPurpose(nss)
	if split[trustroots.ServerAuth].Len() == 0 {
		t.Error("TLS split empty")
	}

	removed := pipe.RemovedCAReport(trustroots.NSS, time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC))
	if len(removed) == 0 {
		t.Error("removed-CA report empty")
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
