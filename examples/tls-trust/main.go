// TLS trust: a live, in-process TLS handshake whose outcome depends on
// which provider's root store the client loads. A server presents a chain
// under a Microsoft-exclusive root; a "Windows" client (Microsoft store)
// completes the handshake while a "Firefox" client (NSS store) refuses it —
// the paper's vulnerability-exposure difference made concrete on a real
// crypto/tls connection.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"log"
	"net"
	"time"

	trustroots "repro"
)

func main() {
	eco, err := trustroots.CachedEcosystem("tracing-your-roots")
	if err != nil {
		log.Fatal(err)
	}

	// Find a Microsoft-exclusive CA (in Microsoft's store, never in NSS).
	var exclusive *trustroots.SyntheticCA
	for _, ca := range eco.Universe.CAs {
		if ca.Program == trustroots.Microsoft && ca.Category == "exclusive" {
			exclusive = ca
			break
		}
	}
	if exclusive == nil {
		log.Fatal("no Microsoft-exclusive CA in universe")
	}
	fmt.Printf("server chain issued by: %s\n\n", exclusive.Name)

	// Issue the server's leaf.
	now := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	leafDER, leafKey, err := trustroots.IssueLeafWithKey(exclusive, "localhost", now.AddDate(-1, 0, 0), now.AddDate(1, 0, 0))
	if err != nil {
		log.Fatal(err)
	}
	serverCert := tls.Certificate{
		Certificate: [][]byte{leafDER, exclusive.Root.DER},
		PrivateKey:  leafKey,
	}

	// Client root pools from the two providers' snapshots at the same date.
	msSnap := eco.DB.History(trustroots.Microsoft).At(now)
	nssSnap := eco.DB.History(trustroots.NSS).At(now)
	msPool := trustroots.CertPoolFor(msSnap, trustroots.ServerAuth)
	nssPool := trustroots.CertPoolFor(nssSnap, trustroots.ServerAuth)
	fmt.Printf("Microsoft store %s: %d TLS roots\n", msSnap.Date.Format("2006-01-02"), msSnap.TrustedCount(trustroots.ServerAuth))
	fmt.Printf("NSS store       %s: %d TLS roots\n\n", nssSnap.Date.Format("2006-01-02"), nssSnap.TrustedCount(trustroots.ServerAuth))

	for _, client := range []struct {
		name string
		pool *x509.CertPool
	}{
		{"Windows client (Microsoft roots)", msPool},
		{"Firefox client (NSS roots)", nssPool},
	} {
		err := handshake(serverCert, client.pool, now)
		if err != nil {
			fmt.Printf("%-34s handshake FAILED: %v\n", client.name, err)
		} else {
			fmt.Printf("%-34s handshake OK\n", client.name)
		}
	}
}

// handshake runs a one-connection TLS server and client over a loopback
// listener, verifying the server chain against the given pool at a fixed
// time.
func handshake(serverCert tls.Certificate, pool *x509.CertPool, at time.Time) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()

	serverErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		srv := tls.Server(conn, &tls.Config{
			Certificates: []tls.Certificate{serverCert},
			Time:         func() time.Time { return at },
		})
		err = srv.Handshake()
		srv.Close()
		serverErr <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	cli := tls.Client(conn, &tls.Config{
		RootCAs:    pool,
		ServerName: "localhost",
		Time:       func() time.Time { return at },
	})
	clientErr := cli.Handshake()
	cli.Close()
	<-serverErr
	return clientErr
}
