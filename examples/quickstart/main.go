// Quickstart: generate the synthetic ecosystem, look at NSS's latest root
// store, round-trip it through the certdata.txt codec, and check a few
// trust facts — the five-minute tour of the library.
package main

import (
	"bytes"
	"fmt"
	"log"

	trustroots "repro"
)

func main() {
	// 1. Generate the corpus (deterministic for a seed).
	eco, err := trustroots.CachedEcosystem("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d providers, %d snapshots total\n",
		len(eco.DB.Providers()), eco.DB.TotalSnapshots())

	// 2. Inspect NSS's latest snapshot.
	nss := eco.DB.History(trustroots.NSS).Latest()
	fmt.Printf("\nNSS %s (%s): %d roots, %d TLS-trusted, %d email-trusted\n",
		nss.Version, nss.Date.Format("2006-01-02"), nss.Len(),
		nss.TrustedCount(trustroots.ServerAuth),
		nss.TrustedCount(trustroots.EmailProtection))

	// 3. Partial distrust: find the Symantec roots still carrying
	// server-distrust-after annotations.
	annotated := 0
	for _, e := range nss.Entries() {
		if cutoff, ok := e.DistrustAfterFor(trustroots.ServerAuth); ok {
			annotated++
			fmt.Printf("  partial distrust: %-22s certificates issued after %s rejected\n",
				e.Label, cutoff.Format("2006-01-02"))
		}
	}
	fmt.Printf("  (%d roots under partial distrust)\n", annotated)

	// 4. Round-trip the store through the certdata.txt codec.
	var buf bytes.Buffer
	if err := trustroots.WriteCertdata(&buf, nss.Entries()); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	parsed, err := trustroots.ParseCertdata(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertdata.txt round trip: %d bytes, %d entries parsed back\n",
		size, len(parsed.Entries))

	// 5. The same store written as a PEM bundle loses the partial-distrust
	// metadata — the derivative-format limitation the paper studies.
	var pemBuf bytes.Buffer
	if err := trustroots.WritePEMBundle(&pemBuf, nss.Entries(), trustroots.ServerAuth); err != nil {
		log.Fatal(err)
	}
	flat, err := trustroots.ParsePEMBundle(&pemBuf, trustroots.ServerAuth)
	if err != nil {
		log.Fatal(err)
	}
	lost := 0
	for _, e := range flat {
		if _, ok := e.DistrustAfterFor(trustroots.ServerAuth); ok {
			lost++
		}
	}
	fmt.Printf("PEM bundle round trip: %d entries, %d partial-distrust annotations survive (certdata had %d)\n",
		len(flat), lost, annotated)
}
