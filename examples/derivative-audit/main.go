// Derivative audit: the paper's §6 in one program. Audits a Linux
// derivative (Debian) against its NSS upstream: update staleness, bespoke
// membership differences, and the Symantec partial-distrust copying failure
// — showing a certificate that NSS semantics reject but the derivative's
// flattened store accepts.
package main

import (
	"fmt"
	"log"
	"time"

	trustroots "repro"
)

func date(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

func main() {
	eco, err := trustroots.CachedEcosystem("tracing-your-roots")
	if err != nil {
		log.Fatal(err)
	}
	pipe := trustroots.NewPipeline(eco.DB)

	// 1. Staleness: how far behind NSS does Debian run?
	st := pipe.DerivativeStaleness(trustroots.Debian, trustroots.NSS,
		date(2015, 1, 1), date(2021, 1, 31))
	fmt.Printf("Debian staleness vs NSS (2015-2021): %.2f substantial versions behind on average\n",
		st.AvgVersionsBehind)
	fmt.Printf("  copy fidelity: mean Jaccard distance to matched NSS version = %.3f (0 = perfect copy)\n\n",
		st.AvgDistance)

	// 2. Membership deviations (Figure 4's story).
	diff := pipe.DerivativeDiffs(trustroots.Debian, trustroots.NSS, nil)
	fmt.Printf("Debian vs matched NSS versions: %d root-additions, %d root-removals across the history\n\n",
		diff.TotalAdded, diff.TotalRemoved)

	// 3. The Symantec incident, end to end. Pick the window after NSS 3.53
	// (partial distrust applied) but before the December 2020 removals.
	at := date(2020, 9, 15)
	nssSnap := eco.DB.History(trustroots.NSS).At(at)
	debSnapNov := eco.DB.History(trustroots.Debian).At(date(2020, 11, 15))

	// Find an NSS Symantec root under partial distrust.
	var symantec *trustroots.TrustEntry
	for _, e := range nssSnap.Entries() {
		if _, ok := e.DistrustAfterFor(trustroots.ServerAuth); ok {
			symantec = e
			break
		}
	}
	if symantec == nil {
		log.Fatal("no partially distrusted root found in NSS snapshot")
	}
	cutoff, _ := symantec.DistrustAfterFor(trustroots.ServerAuth)
	fmt.Printf("NSS %s: root %q trusted, but leaves issued after %s are rejected\n",
		nssSnap.Version, symantec.Label, cutoff.Format("2006-01-02"))

	// The same root in Debian's copy, addressed by wire-format fingerprint:
	// present, but the partial-distrust annotation is gone.
	if deb, ok := debSnapNov.EntryByFingerprint(symantec.Fingerprint.String()); ok {
		_, hasCutoff := deb.DistrustAfterFor(trustroots.ServerAuth)
		fmt.Printf("Debian carries the same root (%s); distrust-after copied: %v\n",
			deb.Fingerprint.Short(), hasCutoff)
	}

	// Issue a leaf after the cutoff from the same CA.
	ca := eco.Universe.Lookup(symantec.Label)
	if ca == nil {
		log.Fatalf("CA %q not in universe", symantec.Label)
	}
	leafDER, err := trustroots.IssueLeaf(ca, "shop.example.test",
		cutoff.AddDate(0, 2, 0), cutoff.AddDate(2, 0, 0))
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := trustroots.NewEntry(leafDER)
	if err != nil {
		log.Fatal(err)
	}

	nssVerifier := trustroots.NewVerifier(nssSnap)
	nssResult := nssVerifier.Verify(trustroots.VerifyRequest{
		Leaf:    leaf.Cert,
		Purpose: trustroots.ServerAuth,
		At:      date(2020, 11, 15),
	})
	fmt.Printf("  NSS verdict for a leaf issued %s: %s\n",
		leaf.Cert.NotBefore.Format("2006-01-02"), nssResult.Outcome)

	// Debian in November 2020 has re-added the Symantec roots (after the
	// premature-removal breakage) — as a flat list with no partial
	// distrust.
	debVerifier := trustroots.NewVerifier(debSnapNov)
	debResult := debVerifier.Verify(trustroots.VerifyRequest{
		Leaf:    leaf.Cert,
		Purpose: trustroots.ServerAuth,
		At:      date(2020, 11, 15),
	})
	fmt.Printf("  Debian (%s) verdict for the same leaf: %s\n",
		debSnapNov.Date.Format("2006-01-02"), debResult.Outcome)

	if nssResult.Outcome != trustroots.VerifyOK && debResult.Outcome == trustroots.VerifyOK {
		fmt.Println("\n=> the derivative's on-or-off store accepts what NSS rejects: §6.2's copying failure, reproduced.")
	} else {
		fmt.Println("\n(unexpected outcome combination — check snapshot windows)")
	}
}
