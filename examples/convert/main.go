// Convert: round-trip one root store through every supported format and
// report what survives — a fidelity matrix demonstrating which formats can
// carry trust purposes and partial distrust (certdata, authroot, apple) and
// which flatten everything to on-or-off membership (PEM, JKS, node).
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	trustroots "repro"
)

func main() {
	eco, err := trustroots.CachedEcosystem("tracing-your-roots")
	if err != nil {
		log.Fatal(err)
	}
	// A snapshot rich in metadata: NSS just after the Symantec partial
	// distrust landed.
	src := eco.DB.History(trustroots.NSS).At(time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC))
	entries := src.Entries()
	origStats := stats(entries)
	fmt.Printf("source: NSS %s — %s\n\n", src.Date.Format("2006-01-02"), origStats)

	tmp, err := os.MkdirTemp("", "trustroots-convert")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	fmt.Printf("%-10s  %-34s  %s\n", "format", "survives round trip", "notes")
	fmt.Printf("%-10s  %-34s  %s\n", "------", "-------------------", "-----")

	// certdata.txt
	var buf bytes.Buffer
	if err := trustroots.WriteCertdata(&buf, entries); err != nil {
		log.Fatal(err)
	}
	res, err := trustroots.ParseCertdata(&buf)
	if err != nil {
		log.Fatal(err)
	}
	row("certdata", stats(res.Entries), "full fidelity: purposes + partial distrust")

	// authroot bundle
	authDir := filepath.Join(tmp, "authroot")
	if err := trustroots.WriteAuthrootBundle(authDir, entries, 1, src.Date); err != nil {
		log.Fatal(err)
	}
	authEntries, _, err := trustroots.ReadAuthrootBundle(authDir)
	if err != nil {
		log.Fatal(err)
	}
	row("authroot", stats(authEntries), "EKU purposes + NotBefore partial distrust")

	// apple directory
	appleDir := filepath.Join(tmp, "apple")
	if err := trustroots.WriteAppleDir(appleDir, entries); err != nil {
		log.Fatal(err)
	}
	appleEntries, err := trustroots.ReadAppleDir(appleDir)
	if err != nil {
		log.Fatal(err)
	}
	row("apple", stats(appleEntries), "per-policy trust settings (extension for distrust-after)")

	// PEM bundle
	var pemBuf bytes.Buffer
	if err := trustroots.WritePEMBundle(&pemBuf, entries, trustroots.ServerAuth); err != nil {
		log.Fatal(err)
	}
	pemEntries, err := trustroots.ParsePEMBundle(&pemBuf, trustroots.ServerAuth)
	if err != nil {
		log.Fatal(err)
	}
	row("pem", stats(pemEntries), "TLS membership only — metadata flattened")

	// JKS
	jksData, err := trustroots.WriteJKS(entries, "changeit", src.Date, trustroots.ServerAuth)
	if err != nil {
		log.Fatal(err)
	}
	ks, err := trustroots.ParseJKS(jksData, "changeit")
	if err != nil {
		log.Fatal(err)
	}
	jksEntries, err := trustroots.JKSEntries(ks, trustroots.ServerAuth, trustroots.EmailProtection, trustroots.CodeSigning)
	if err != nil {
		log.Fatal(err)
	}
	row("jks", stats(jksEntries), "membership only; re-read conflates all purposes")

	// node_root_certs.h
	var nodeBuf bytes.Buffer
	if err := trustroots.WriteNodeCerts(&nodeBuf, entries); err != nil {
		log.Fatal(err)
	}
	nodeEntries, err := trustroots.ParseNodeCerts(&nodeBuf)
	if err != nil {
		log.Fatal(err)
	}
	row("node", stats(nodeEntries), "TLS membership only")
}

type fidelity struct {
	entries       int
	tls           int
	email         int
	distrustAfter int
}

func (f fidelity) String() string {
	return fmt.Sprintf("%3d roots, %3d tls, %3d email, %d partial-distrust", f.entries, f.tls, f.email, f.distrustAfter)
}

func stats(entries []*trustroots.TrustEntry) fidelity {
	var f fidelity
	f.entries = len(entries)
	for _, e := range entries {
		if e.TrustedFor(trustroots.ServerAuth) {
			f.tls++
		}
		if e.TrustedFor(trustroots.EmailProtection) {
			f.email++
		}
		if _, ok := e.DistrustAfterFor(trustroots.ServerAuth); ok {
			f.distrustAfter++
		}
	}
	return f
}

func row(format string, f fidelity, notes string) {
	fmt.Printf("%-10s  %-34s  %s\n", format, f, notes)
}
