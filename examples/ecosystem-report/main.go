// Ecosystem report: the full paper reproduction in one program — generate
// the corpus and render every table and figure with the paper's published
// values alongside for comparison.
package main

import (
	"log"
	"os"

	trustroots "repro"
)

func main() {
	eco, err := trustroots.CachedEcosystem("tracing-your-roots")
	if err != nil {
		log.Fatal(err)
	}
	if err := trustroots.RenderReport(os.Stdout, eco); err != nil {
		log.Fatal(err)
	}
}
