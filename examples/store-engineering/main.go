// Store engineering: the paper's §7 recommendations applied — audit a
// derivative with the linter, split a multi-purpose store into
// single-purpose bundles, generate the removed-CA transparency report, and
// minimize a store against an observed workload (the attack-surface
// reduction of Braun/Smith et al. the paper discusses).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	trustroots "repro"
)

func date(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

func main() {
	eco, err := trustroots.CachedEcosystem("tracing-your-roots")
	if err != nil {
		log.Fatal(err)
	}
	pipe := trustroots.NewPipeline(eco.DB)

	// 1. Lint a derivative: AmazonLinux in mid-2017, the worst offender.
	report, err := pipe.AuditDerivative(trustroots.AmazonLinux, trustroots.NSS,
		date(2017, 6, 1), trustroots.AuditConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Derivative audit: AmazonLinux vs NSS at %s ==\n", report.At.Format("2006-01-02"))
	fmt.Printf("   %d substantial versions behind upstream\n", report.VersionsBehind)
	for kind, n := range report.CountByKind() {
		fmt.Printf("   %-22s %d findings\n", kind, n)
	}
	shown := 0
	for _, f := range report.Findings {
		if f.Kind == trustroots.FindingRetainedRemoval && shown < 3 {
			fmt.Printf("   e.g. %s\n", f)
			shown++
		}
	}

	// 2. Single-purpose stores: split NSS and write RHEL-style bundles.
	nss := eco.DB.History(trustroots.NSS).Latest()
	split := trustroots.SplitByPurpose(nss)
	fmt.Printf("\n== Purpose split of NSS %s ==\n", nss.Date.Format("2006-01-02"))
	for _, p := range []trustroots.Purpose{trustroots.ServerAuth, trustroots.EmailProtection, trustroots.CodeSigning} {
		fmt.Printf("   %-18s %3d roots\n", p, split[p].Len())
	}
	dir, err := os.MkdirTemp("", "purpose-bundles")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := trustroots.WritePurposeBundles(dir, nss.Entries()); err != nil {
		log.Fatal(err)
	}
	back, err := trustroots.ReadPurposeBundles(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   wrote %s/{tls,email,objsign}-ca-bundle.pem; re-read %d distinct roots with purposes intact\n",
		filepath.Base(dir), len(back))

	// 3. Removed-CA transparency report for NSS since 2010.
	removed := pipe.RemovedCAReport(trustroots.NSS, date(2010, 1, 1))
	fmt.Printf("\n== NSS removed-CA report since 2010: %d removals ==\n", len(removed))
	for _, r := range removed[:3] {
		fmt.Printf("   %s  %-28s trusted %s..%s\n", r.Fingerprint.Short(), r.Label,
			r.FirstTrusted.Format("2006"), r.LastTrusted.Format("2006-01-02"))
	}
	fmt.Printf("   ...\n")

	// 4. Minimize against a synthetic workload where a handful of CAs
	// terminate most chains (the empirical shape of real TLS traffic).
	entries := nss.Entries()
	usage := trustroots.Usage{}
	weight := 1 << 12
	for _, e := range entries {
		if e.TrustedFor(trustroots.ServerAuth) {
			usage[e.Fingerprint] = weight
			if weight > 1 {
				weight /= 2
			}
		}
	}
	res := pipe.Minimize(nss, usage, 0.99)
	fmt.Printf("\n== Minimization: %d roots cover %.1f%% of the workload (dropped %d) ==\n",
		len(res.Kept), res.Coverage*100, len(res.Dropped))
}
