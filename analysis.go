package trustroots

import (
	"crypto/x509"

	"repro/internal/certutil"
	"repro/internal/core"
	"repro/internal/useragent"
	"repro/internal/verify"
)

// --- User agents (Table 1 / Figure 2) ---------------------------------------

// UserAgent is a parsed User-Agent string.
type UserAgent = useragent.Agent

// ParseUserAgent classifies a User-Agent string into (client, OS, version).
func ParseUserAgent(ua string) UserAgent { return useragent.Parse(ua) }

// MapUserAgent applies the paper's client→root-store rules.
func MapUserAgent(a UserAgent) useragent.MapResult { return useragent.MapToProvider(a) }

// PaperUASample returns the paper's Table 1 top-200 population rows.
func PaperUASample() []useragent.SampleRow { return useragent.PaperSample() }

// GenerateUAs expands sample rows into concrete User-Agent strings.
func GenerateUAs(rows []useragent.SampleRow) []string { return useragent.Generate(rows) }

// Table1 is the reproduced Table 1.
type Table1 = core.Table1

// AnalyzeUserAgents runs the Table 1 pipeline over raw UA strings.
func AnalyzeUserAgents(uas []string) *Table1 { return core.AnalyzeUserAgents(uas) }

// Figure2 is the ecosystem family rollup (the inverted pyramid).
type Figure2 = core.Figure2

// EcosystemShares rolls UA strings up to root-program families.
func EcosystemShares(uas []string) *Figure2 { return core.EcosystemShares(uas) }

// --- Ordination (Figure 1) ----------------------------------------------------

// Ordination is the Figure 1 result: MDS embedding + clustering.
type Ordination = core.Ordination

// OrdinationConfig controls the Figure 1 computation.
type OrdinationConfig = core.OrdinationConfig

// DefaultOrdinationConfig mirrors the paper (2011–2021, k=4).
func DefaultOrdinationConfig() OrdinationConfig { return core.DefaultOrdinationConfig() }

// --- Derivative auditing & store engineering (§7 extensions) ----------------

// AuditReport is a derivative-store audit result.
type AuditReport = core.AuditReport

// AuditConfig tunes the derivative audit.
type AuditConfig = core.AuditConfig

// Finding is one audit observation.
type Finding = core.Finding

// Audit finding kinds.
const (
	FindingStale               = core.FindingStale
	FindingRetainedRemoval     = core.FindingRetainedRemoval
	FindingForeignRoot         = core.FindingForeignRoot
	FindingLostPartialDistrust = core.FindingLostPartialDistrust
	FindingExpiredRoot         = core.FindingExpiredRoot
	FindingMissingRoot         = core.FindingMissingRoot
)

// SplitByPurpose partitions a snapshot into single-purpose stores, the
// paper's §7 recommendation (tls/email/objsign bundles).
func SplitByPurpose(s *Snapshot) map[Purpose]*Snapshot { return core.SplitByPurpose(s) }

// Usage records per-anchor chain-termination counts for minimization.
type Usage = core.Usage

// MinimizeResult is the outcome of minimizing a store against a workload.
type MinimizeResult = core.MinimizeResult

// RemovedCA is one row of a removed-CA transparency report.
type RemovedCA = core.RemovedCA

// --- Fingerprints ---------------------------------------------------------------

// Fingerprint is the SHA-256 identity of a certificate.
type Fingerprint = certutil.Fingerprint

// FingerprintOf computes the canonical fingerprint of DER bytes.
func FingerprintOf(der []byte) Fingerprint { return certutil.SHA256Fingerprint(der) }

// --- Verification ----------------------------------------------------------------

// Verifier verifies chains against one snapshot with purpose- and
// time-aware semantics, including partial distrust.
type Verifier = verify.Verifier

// VerifyRequest describes one chain verification.
type VerifyRequest = verify.Request

// VerifyResult is the outcome with diagnostics.
type VerifyResult = verify.Result

// Verification outcomes.
const (
	VerifyOK              = verify.OK
	VerifyNoAnchor        = verify.NoAnchor
	VerifyNotTrusted      = verify.AnchorNotTrusted
	VerifyPartialDistrust = verify.AnchorPartialDistrust
	VerifyExpired         = verify.Expired
)

// NewVerifier creates a verifier over a snapshot.
func NewVerifier(s *Snapshot) *Verifier { return verify.New(s) }

// CertPoolFor extracts the x509.CertPool of roots a snapshot trusts for a
// purpose — ready for tls.Config.RootCAs.
func CertPoolFor(s *Snapshot, p Purpose) *x509.CertPool {
	return verify.New(s).Pool(p)
}
