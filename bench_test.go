package trustroots_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark runs
// the full analysis that regenerates its artifact from the synthetic corpus
// (generated once per process) and asserts the paper's qualitative shape so
// a regression in the reproduction fails the bench run, not just the unit
// tests. `go test -run TestReproduction -v` prints the artifacts themselves.

import (
	"bytes"
	"encoding/json"
	"encoding/pem"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	trustroots "repro"
	"repro/internal/artifacts"
	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/paperdata"
	"repro/internal/service"
	"repro/internal/setdist"
	"repro/internal/useragent"
	"repro/internal/verify"
)

var (
	benchOnce sync.Once
	benchCtx  *artifacts.Context
	benchErr  error
)

func benchContext(tb testing.TB) *artifacts.Context {
	tb.Helper()
	benchOnce.Do(func() {
		eco, err := trustroots.CachedEcosystem("bench")
		if err != nil {
			benchErr = err
			return
		}
		benchCtx = artifacts.NewContext(eco)
	})
	if benchErr != nil {
		tb.Fatalf("generate ecosystem: %v", benchErr)
	}
	return benchCtx
}

func ts(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

// TestReproduction prints every artifact (run with -v to see them); it is
// the harness entry point whose output EXPERIMENTS.md records.
func TestReproduction(t *testing.T) {
	ctx := benchContext(t)
	var w io.Writer = io.Discard
	if testing.Verbose() {
		w = os.Stdout
	}
	if err := ctx.RenderAll(w); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTable1UserAgents measures the UA → provider mapping pipeline
// over the top-200 sample.
func BenchmarkTable1UserAgents(b *testing.B) {
	uas := useragent.Generate(useragent.PaperSample())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := core.AnalyzeUserAgents(uas)
		if t1.Total != 200 || t1.Included == 0 {
			b.Fatalf("bad table 1: %d/%d", t1.Included, t1.Total)
		}
	}
}

// BenchmarkTable2Dataset measures the dataset summary over all providers.
func BenchmarkTable2Dataset(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := ctx.Pipe.DatasetSummary()
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure1MDS measures the full ordination: pairwise Jaccard,
// SMACOF embedding, clustering.
func BenchmarkFigure1MDS(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ord, err := ctx.Pipe.Ordinate(core.DefaultOrdinationConfig())
		if err != nil {
			b.Fatal(err)
		}
		if ord.Purity < 0.9 {
			b.Fatalf("purity regressed: %.3f", ord.Purity)
		}
	}
}

// BenchmarkFigure2Ecosystem measures the family-share rollup.
func BenchmarkFigure2Ecosystem(b *testing.B) {
	uas := useragent.Generate(useragent.PaperSample())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f2 := core.EcosystemShares(uas)
		if !(f2.Share(useragent.FamilyNSS) > f2.Share(useragent.FamilyApple)) {
			b.Fatal("pyramid shape regressed")
		}
	}
}

// BenchmarkTable3Hygiene measures the hygiene metrics over the four
// programs' full histories.
func BenchmarkTable3Hygiene(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := ctx.Pipe.Hygiene(paperdata.IndependentPrograms)
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable4RemovalLag measures the incident response-lag analysis.
func BenchmarkTable4RemovalLag(b *testing.B) {
	ctx := benchContext(b)
	specs := ctx.IncidentSpecs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := ctx.Pipe.RemovalLag(specs)
		if len(rows) == 0 {
			b.Fatal("no lag rows")
		}
	}
}

// BenchmarkFigure3Staleness measures derivative staleness for all six
// derivatives.
func BenchmarkFigure3Staleness(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	from, to := ts(2015, 1, 1), ts(2021, 4, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ctx.Pipe.AllDerivativeStaleness(paperdata.NSS, paperdata.Derivatives, from, to)
		if len(res) != len(paperdata.Derivatives) {
			b.Fatalf("series = %d", len(res))
		}
	}
}

// BenchmarkFigure4DerivativeDiffs measures the per-derivative membership
// diff series.
func BenchmarkFigure4DerivativeDiffs(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	categorize := ctx.Categorize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range paperdata.Derivatives {
			diff := ctx.Pipe.DerivativeDiffs(d, paperdata.NSS, categorize)
			if diff == nil || !diff.Deviates() {
				b.Fatalf("%s: deviation regressed", d)
			}
		}
	}
}

// BenchmarkTable5Survey measures the software-survey rendering (pure
// curated data; baseline for the harness).
func BenchmarkTable5Survey(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.Table5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Exclusive measures the program-exclusive root analysis.
func BenchmarkTable6Exclusive(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := ctx.Pipe.ExclusiveCounts(paperdata.IndependentPrograms)
		if counts[paperdata.Microsoft] != 30 {
			b.Fatalf("Microsoft exclusives = %d", counts[paperdata.Microsoft])
		}
	}
}

// BenchmarkTable7NSSRemovals measures removal-event extraction from the NSS
// history.
func BenchmarkTable7NSSRemovals(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := ctx.Pipe.RemovalCatalog(paperdata.NSS, ts(2010, 1, 1), nil)
		if len(events) == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkAblationMDS compares SMACOF stress majorization against
// closed-form classical scaling on the Figure 1 distance matrix — the
// design-choice ablation for the ordination stage.
func BenchmarkAblationMDS(b *testing.B) {
	ctx := benchContext(b)
	cfg := core.DefaultOrdinationConfig()
	var snaps = ctxSnapshots(ctx, cfg)
	dist := setdist.DistanceMatrix(snaps, ctx.Pipe.Purpose)

	b.Run("classical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mds.Classical(dist, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("smacof", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := mds.SMACOF(dist, mds.Config{Dims: 2})
			if err != nil {
				b.Fatal(err)
			}
			classical, _ := mds.Classical(dist, 2)
			if res.Stress > classical.Stress+1e-9 {
				b.Fatal("SMACOF should not be worse than its own initialization")
			}
		}
	})
}

// BenchmarkDistanceMatrix isolates the pairwise-distance stage of Figure 1
// and compares the map-based reference against the interned-bitset engine,
// serial and with the worker pool — the tentpole speedup, measured without
// the MDS stages on top.
func BenchmarkDistanceMatrix(b *testing.B) {
	ctx := benchContext(b)
	cfg := core.DefaultOrdinationConfig()
	snaps := ctxSnapshots(ctx, cfg)
	p := ctx.Pipe.Purpose

	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m := setdist.DistanceMatrixMap(snaps, p, nil); m.Rows != len(snaps) {
				b.Fatalf("rows = %d", m.Rows)
			}
		}
	})
	b.Run("bitset-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m := setdist.DistanceMatrixBits(snaps, p, nil, 1); m.Rows != len(snaps) {
				b.Fatalf("rows = %d", m.Rows)
			}
		}
	})
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m := setdist.DistanceMatrix(snaps, p); m.Rows != len(snaps) {
				b.Fatalf("rows = %d", m.Rows)
			}
		}
	})
}

// ctxSnapshots re-derives the ordination snapshot set (mirrors the
// pipeline's internal selection using public behaviour).
func ctxSnapshots(ctx *artifacts.Context, cfg core.OrdinationConfig) []*trustroots.Snapshot {
	var out []*trustroots.Snapshot
	for _, prov := range ctx.Eco.DB.Providers() {
		for _, st := range ctx.Pipe.UniqueStates(prov) {
			if st.Date.Before(cfg.From) || st.Date.After(cfg.To) {
				continue
			}
			if s := ctx.Eco.DB.History(prov).At(st.Date); s != nil {
				out = append(out, s)
			}
		}
	}
	return out
}

// BenchmarkAblationPartialDistrust compares verification outcomes for a
// post-cutoff leaf under NSS semantics vs a derivative's flattened copy —
// the paper's §6.2 failure, measured.
func BenchmarkAblationPartialDistrust(b *testing.B) {
	ctx := benchContext(b)
	eco := ctx.Eco

	nssSnap := eco.DB.History(paperdata.NSS).At(ts(2020, 9, 15))
	debSnap := eco.DB.History(paperdata.Debian).At(ts(2020, 11, 15))
	var anchor *trustroots.TrustEntry
	for _, e := range nssSnap.Entries() {
		if _, ok := e.DistrustAfterFor(trustroots.ServerAuth); ok {
			anchor = e
			break
		}
	}
	if anchor == nil {
		b.Fatal("no partially distrusted anchor")
	}
	ca := eco.Universe.Lookup(anchor.Label)
	cutoff, _ := anchor.DistrustAfterFor(trustroots.ServerAuth)
	leafDER, err := trustroots.IssueLeaf(ca, "bench.example.test", cutoff.AddDate(0, 1, 0), cutoff.AddDate(2, 0, 0))
	if err != nil {
		b.Fatal(err)
	}
	leaf, err := trustroots.NewEntry(leafDER)
	if err != nil {
		b.Fatal(err)
	}
	at := ts(2020, 11, 15)

	b.Run("nss-semantics", func(b *testing.B) {
		v := verify.New(nssSnap)
		for i := 0; i < b.N; i++ {
			res := v.Verify(verify.Request{Leaf: leaf.Cert, Purpose: trustroots.ServerAuth, At: at})
			if res.Outcome != verify.AnchorPartialDistrust {
				b.Fatalf("outcome = %v", res.Outcome)
			}
		}
	})
	b.Run("flat-derivative", func(b *testing.B) {
		v := verify.New(debSnap)
		for i := 0; i < b.N; i++ {
			res := v.Verify(verify.Request{Leaf: leaf.Cert, Purpose: trustroots.ServerAuth, At: at})
			if res.Outcome != verify.OK {
				b.Fatalf("outcome = %v", res.Outcome)
			}
		}
	})
}

// serviceVerifyFixture prepares a server over the bench corpus plus a
// §6.2 chain (post-cutoff Symantec leaf) for the serving-layer benchmarks.
func serviceVerifyFixture(b *testing.B) (*service.Server, []byte, []string) {
	b.Helper()
	ctx := benchContext(b)
	eco := ctx.Eco

	nssSnap := eco.DB.History(paperdata.NSS).At(ts(2020, 9, 15))
	var anchor *trustroots.TrustEntry
	for _, e := range nssSnap.Entries() {
		if _, ok := e.DistrustAfterFor(trustroots.ServerAuth); ok {
			anchor = e
			break
		}
	}
	if anchor == nil {
		b.Fatal("no partially distrusted anchor")
	}
	ca := eco.Universe.Lookup(anchor.Label)
	cutoff, _ := anchor.DistrustAfterFor(trustroots.ServerAuth)
	leafDER, err := trustroots.IssueLeaf(ca, "bench.example.test", cutoff.AddDate(0, 1, 0), cutoff.AddDate(2, 0, 0))
	if err != nil {
		b.Fatal(err)
	}
	chainPEM := string(pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: leafDER}))

	var versions []string
	for _, s := range eco.DB.History(paperdata.NSS).Snapshots() {
		versions = append(versions, "NSS@"+s.Version)
	}
	srv := service.New(eco.DB, service.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})

	body, err := json.Marshal(map[string]any{
		"chain_pem": chainPEM, "stores": []string{"NSS"}, "at": "2020-11-15",
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv, body, versions
}

func postServiceVerify(b *testing.B, srv *service.Server, body []byte) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/verify", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkServiceVerify measures the POST /v1/verify hot path cache-cold
// vs cache-warm. Cold rotates snapshot and chain-key per iteration so every
// request misses the verdict LRU and periodically pays verifier (cert pool)
// construction; warm repeats one request, which after the first hit is a
// pure LRU recall. Warm/cold is the serving layer's caching win.
func BenchmarkServiceVerify(b *testing.B) {
	srv, body, versions := serviceVerifyFixture(b)

	b.Run("cold", func(b *testing.B) {
		// A fresh server so nothing is pre-built. Each iteration rotates
		// the target snapshot (periodically paying verifier/pool
		// construction) and perturbs the verification instant by one
		// second (a distinct verdict key), so every request misses the
		// LRU and runs a full chain verification.
		cold := service.New(benchContext(b).Eco.DB, service.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			b.Fatal(err)
		}
		base := time.Date(2020, 11, 15, 0, 0, 0, 0, time.UTC)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m["stores"] = []string{versions[i%len(versions)]}
			m["at"] = base.Add(time.Duration(i) * time.Second).Format(time.RFC3339)
			raw, _ := json.Marshal(m)
			postServiceVerify(b, cold, raw)
		}
	})
	b.Run("warm", func(b *testing.B) {
		postServiceVerify(b, srv, body) // prime the caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postServiceVerify(b, srv, body)
		}
	})
}

// BenchmarkFingerprintIndex measures the global root index: one-time build
// cost over the full corpus and steady-state lookup cost.
func BenchmarkFingerprintIndex(b *testing.B) {
	ctx := benchContext(b)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ix := service.BuildIndex(ctx.Eco.DB); ix.Size() == 0 {
				b.Fatal("empty index")
			}
		}
	})
	b.Run("lookup", func(b *testing.B) {
		ix := service.BuildIndex(ctx.Eco.DB)
		var fps []string
		for _, e := range ctx.Eco.DB.History(paperdata.NSS).Latest().Entries() {
			fps = append(fps, e.Fingerprint.String())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := ix.Lookup(fps[i%len(fps)]); !ok {
				b.Fatal("miss for an indexed root")
			}
		}
	})
}

// BenchmarkGenerateEcosystem measures full corpus generation.
func BenchmarkGenerateEcosystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eco, err := trustroots.GenerateEcosystem("bench-gen")
		if err != nil {
			b.Fatal(err)
		}
		if eco.DB.TotalSnapshots() < 619 {
			b.Fatalf("snapshots = %d", eco.DB.TotalSnapshots())
		}
	}
}

// BenchmarkAblationDistanceMetric compares ordination quality under the
// paper's Jaccard distance against the overlap-coefficient distance: the
// overlap metric collapses subset relationships (a derivative equals its
// upstream, Java equals the mainstream core), degrading family separation.
func BenchmarkAblationDistanceMetric(b *testing.B) {
	ctx := benchContext(b)
	run := func(b *testing.B, metric setdist.Metric, name string) float64 {
		cfg := core.DefaultOrdinationConfig()
		cfg.Metric = metric
		var purity float64
		for i := 0; i < b.N; i++ {
			ord, err := ctx.Pipe.Ordinate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			purity = ord.Purity
		}
		b.ReportMetric(purity, "purity")
		return purity
	}
	var jaccardPurity, overlapPurity float64
	b.Run("jaccard", func(b *testing.B) { jaccardPurity = run(b, nil, "jaccard") })
	b.Run("overlap", func(b *testing.B) { overlapPurity = run(b, setdist.OverlapDistance, "overlap") })
	if jaccardPurity < overlapPurity-1e-9 && jaccardPurity > 0 {
		b.Logf("note: jaccard purity %.3f vs overlap %.3f", jaccardPurity, overlapPurity)
	}
}
