package trustroots_test

import (
	"fmt"

	trustroots "repro"
)

// ExampleParseUserAgent shows the Table 1 building block: classifying a
// raw User-Agent header.
func ExampleParseUserAgent() {
	a := trustroots.ParseUserAgent(
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:86.0) Gecko/20100101 Firefox/86.0")
	m := trustroots.MapUserAgent(a)
	fmt.Printf("%s %s -> provider %s (traceable=%v)\n", a.Browser, a.OS, m.Provider, m.Traceable)
	// Output:
	// Firefox Windows -> provider NSS (traceable=true)
}

// ExampleAnalyzeUserAgents reproduces the paper's Table 1 headline from the
// calibrated top-200 sample.
func ExampleAnalyzeUserAgents() {
	uas := trustroots.GenerateUAs(trustroots.PaperUASample())
	t1 := trustroots.AnalyzeUserAgents(uas)
	fmt.Printf("traceable: %d/%d (%.1f%%)\n", t1.Included, t1.Total, t1.CoveragePercent())
	// Output:
	// traceable: 154/200 (77.0%)
}

// ExampleEcosystemShares reproduces §4's inverted pyramid.
func ExampleEcosystemShares() {
	uas := trustroots.GenerateUAs(trustroots.PaperUASample())
	f2 := trustroots.EcosystemShares(uas)
	for _, s := range f2.Shares {
		fmt.Printf("%-10s %.1f%%\n", s.Family, s.Percent)
	}
	// Output:
	// Mozilla    33.5%
	// Apple      26.5%
	// Microsoft  17.0%
}

// ExampleFingerprintOf shows the canonical certificate identity used across
// every store and analysis.
func ExampleFingerprintOf() {
	fp := trustroots.FingerprintOf([]byte("example DER bytes"))
	fmt.Println(fp.Short())
	// Output:
	// f75c0e7f
}
