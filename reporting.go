package trustroots

import (
	"fmt"
	"io"

	"repro/internal/artifacts"
)

// RenderReport writes every reproduced table and figure of the paper, in
// paper order, with the published values alongside for comparison.
func RenderReport(w io.Writer, eco *Ecosystem) error {
	return artifacts.NewContext(eco).RenderAll(w)
}

// RenderArtifact writes a single named artifact: table1, table2, table3,
// table4, table5, table6, table7, figure1, figure2, figure3 or figure4.
func RenderArtifact(w io.Writer, eco *Ecosystem, name string) error {
	ctx := artifacts.NewContext(eco)
	switch name {
	case "table1":
		return ctx.Table1(w)
	case "table2":
		return ctx.Table2(w)
	case "table3":
		return ctx.Table3(w)
	case "table4":
		return ctx.Table4(w)
	case "table5":
		return ctx.Table5(w)
	case "table6":
		return ctx.Table6(w)
	case "table7":
		return ctx.Table7(w)
	case "figure1":
		return ctx.Figure1(w)
	case "figure2":
		return ctx.Figure2(w)
	case "figure3":
		return ctx.Figure3(w)
	case "figure4":
		return ctx.Figure4(w)
	default:
		return fmt.Errorf("trustroots: unknown artifact %q", name)
	}
}
